// Checker deadline: every net.Conn read and write must be dominated by a
// deadline of the matching kind on the same connection — SetReadDeadline
// before reads, SetWriteDeadline before writes, SetDeadline for either —
// or be part of a documented context-governed unit. A southbound read or
// write with neither is how the monitor wedges when a switch stalls: the
// goroutine parks in the kernel with no deadline to fail it and no
// cancellation path to close the socket under it.
//
// The analysis is interprocedural must-dominance in the lockset style:
// each function body is walked in evaluation order threading the set of
// (connection chain, kind) pairs armed so far; branches run on clones and
// merge by intersection ("armed on every path"), so an arm inside one arm
// of an if does not excuse the fallthrough. Call sites substitute callee
// summaries both ways:
//
//   - arms: a callee that arms a deadline on a chain rooted at its
//     receiver or a parameter (an arming helper) arms the translated
//     chain in the caller;
//   - needs: a callee that performs unarmed I/O on a receiver/parameter
//     chain requires its callers to have armed the translated chain at
//     the call site; the violation is reported at the I/O operation, the
//     one place the fix (or annotation) belongs. A function whose needs
//     reach no loaded call site is an API boundary and is trusted.
//
// The governed-unit escape hatch is the function annotation
//
//	// lint:deadline conn=<chain> <reason>
//
// which declares every I/O op on <chain> in that function to be governed
// by a cancellation path (typically context.AfterFunc closing the conn)
// and documents why a per-op deadline is wrong there. The reason is
// mandatory, like //lint:ignore.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Deadline enforces deadline domination on net.Conn I/O.
var Deadline = &Analyzer{
	Name:   "deadline",
	Doc:    "net.Conn reads/writes must be dominated by SetReadDeadline/SetWriteDeadline on the same conn (interprocedural) or annotated `// lint:deadline conn=<chain> <reason>`",
	Global: true,
	Run:    runDeadline,
}

// dlKind is the deadline kind a connection operation needs or arms.
type dlKind uint8

const (
	dlRead  dlKind = 1 << iota // SetReadDeadline / read ops
	dlWrite                    // SetWriteDeadline / write ops
)

func (k dlKind) String() string {
	switch k {
	case dlRead:
		return "read"
	case dlWrite:
		return "write"
	}
	return "read/write"
}

// setter names the arming call that satisfies kind.
func (k dlKind) setter() string {
	switch k {
	case dlRead:
		return "SetReadDeadline"
	case dlWrite:
		return "SetWriteDeadline"
	}
	return "SetDeadline"
}

// dlRoot classifies the first segment of a connection chain.
type dlRoot uint8

const (
	dlRootOther dlRoot = iota // local variable, package var, unknown
	dlRootRecv                // the function's receiver
	dlRootParam               // a function parameter
)

// dlChain is one connection identity inside a function: the syntactic
// ident/selector chain ("c.conn") plus how its root binds, which decides
// whether the chain is translatable across a call site.
type dlChain struct {
	chain    string
	root     dlRoot
	paramIdx int // valid when root == dlRootParam
}

// dlArm is one summary entry: calling this function arms kind on the
// receiver/parameter-rooted chain (rest = chain minus the root segment).
type dlArm struct {
	root     dlRoot
	paramIdx int
	rest     string
	kind     dlKind
}

// dlNeed is one unarmed I/O op on a receiver/parameter-rooted chain: the
// function requires callers to arm it. pos/op/chain describe the original
// operation for the diagnostic.
type dlNeed struct {
	root     dlRoot
	paramIdx int
	rest     string
	kind     dlKind
	pos      token.Pos
	op       string
	chain    string // chain as written at the op, for the message
	owner    *FuncNode
}

// dlCallSite is one resolved call with the armed set at the call.
type dlCallSite struct {
	caller  *FuncNode
	call    *ast.CallExpr
	callees []*FuncNode
	armed   map[string]dlKind
}

// dlState is the whole-program analysis state.
type dlState struct {
	pass   *Pass
	prog   *Program
	arms   map[*FuncNode][]dlArm
	needs  map[*FuncNode][]dlNeed
	sites  map[*FuncNode][]dlCallSite // callee → call sites
	direct []dlNeed                   // ops reported unconditionally (local/unknown roots)
	annot  map[*FuncNode]map[string]bool
}

func runDeadline(pass *Pass) {
	st := &dlState{
		pass:  pass,
		prog:  pass.Prog,
		annot: make(map[*FuncNode]map[string]bool),
	}
	for _, n := range st.prog.nodes {
		if n.Decl != nil {
			if chains := deadlineAnnotations(n.Decl.Doc); len(chains) > 0 {
				st.annot[n] = chains
			}
		}
	}
	// Summaries converge quickly: arms/needs only grow, and chains are
	// bounded by the source text. Iterate to fixpoint.
	for i := 0; i < 20; i++ {
		if !st.iterate() {
			break
		}
	}
	st.report()
}

// deadlineAnnotations parses `lint:deadline conn=<chain> <reason>` lines
// (with or without a space after //) into the set of governed chains.
func deadlineAnnotations(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var chains map[string]bool
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
		if !strings.HasPrefix(text, "lint:deadline ") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:deadline "))
		if !strings.HasPrefix(rest, "conn=") {
			continue
		}
		fields := strings.SplitN(strings.TrimPrefix(rest, "conn="), " ", 2)
		if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
			continue // a reason is required
		}
		if chains == nil {
			chains = make(map[string]bool)
		}
		chains[fields[0]] = true
	}
	return chains
}

// iterate rebuilds every function's summary against the previous round's
// callee summaries, reporting whether anything changed.
func (st *dlState) iterate() bool {
	arms := make(map[*FuncNode][]dlArm, len(st.prog.nodes))
	needs := make(map[*FuncNode][]dlNeed, len(st.prog.nodes))
	sites := make(map[*FuncNode][]dlCallSite)
	var direct []dlNeed
	for _, n := range st.prog.nodes {
		w := &dlWalker{st: st, node: n, armed: make(map[string]dlKind)}
		for chain := range st.annot[n] {
			w.armed[chain] = dlRead | dlWrite
		}
		w.walkStmt(n.body())
		arms[n] = w.exitArms()
		needs[n] = w.needs
		direct = append(direct, w.direct...)
		for _, cs := range w.sites {
			for _, callee := range cs.callees {
				sites[callee] = append(sites[callee], cs)
			}
		}
	}
	changed := len(st.arms) == 0 ||
		!dlArmsEqual(arms, st.arms) || !dlNeedsEqual(needs, st.needs)
	st.arms, st.needs, st.sites, st.direct = arms, needs, sites, direct
	return changed
}

func dlArmsEqual(a, b map[*FuncNode][]dlArm) bool {
	if len(a) != len(b) {
		return false
	}
	for n, av := range a {
		bv, ok := b[n]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func dlNeedsEqual(a, b map[*FuncNode][]dlNeed) bool {
	if len(a) != len(b) {
		return false
	}
	for n, av := range a {
		bv, ok := b[n]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// report resolves needs against call sites and emits diagnostics. Direct
// findings (local/unknown-rooted ops) are unconditional; receiver/param
// needs fire when any loaded call site fails to arm the translated
// chain, propagating through caller-rooted chains first.
func (st *dlState) report() {
	reported := make(map[token.Pos]bool)
	for _, d := range st.direct {
		if !reported[d.pos] {
			reported[d.pos] = true
			st.pass.Reportf(d.pos,
				"%s on %s without a dominating %s deadline on any path; call %s first or annotate `// lint:deadline conn=%s <reason>`",
				d.op, d.chain, d.kind, d.kind.setter(), d.chain)
		}
	}
	// Worklist of needs: a call site that leaves a need unarmed on a
	// chain rooted at the *caller's* receiver/params defers the decision
	// to the caller's own call sites (the arm may live one level up).
	type pending struct {
		need  dlNeed
		owner *FuncNode
		rest  string
		root  dlRoot
		idx   int
		depth int
	}
	var work []pending
	for n, ns := range st.needs {
		for _, d := range ns {
			work = append(work, pending{need: d, owner: n, rest: d.rest, root: d.root, idx: d.paramIdx})
		}
	}
	for len(work) > 0 {
		p := work[0]
		work = work[1:]
		if reported[p.need.pos] || p.depth > 10 {
			continue
		}
		for _, cs := range st.sites[p.owner] {
			chain, ok := translateChain(cs, p.root, p.idx, p.rest)
			if !ok {
				// Untranslatable call site (dynamic receiver, spread
				// args): provenance unknown, trust it.
				continue
			}
			if cs.armed[chain.chain]&p.need.kind != 0 {
				continue
			}
			if chain.root != dlRootOther && cs.caller != p.owner {
				work = append(work, pending{
					need: p.need, owner: cs.caller,
					rest: restOf(chain.chain), root: chain.root, idx: chain.paramIdx,
					depth: p.depth + 1,
				})
				continue
			}
			if !reported[p.need.pos] {
				reported[p.need.pos] = true
				st.pass.Reportf(p.need.pos,
					"%s on %s reaches a caller (%s at %s) that has not armed a %s deadline; call %s on every path or annotate `// lint:deadline conn=%s <reason>`",
					p.need.op, p.need.chain, cs.caller.Name, st.prog.shortPos(cs.call.Pos()),
					p.need.kind, p.need.kind.setter(), p.need.chain)
			}
			break
		}
	}
}

// restOf drops the first segment of a dotted chain ("c.conn" → "conn").
func restOf(chain string) string {
	if i := strings.IndexByte(chain, '.'); i >= 0 {
		return chain[i+1:]
	}
	return ""
}

// translateChain maps a callee-rooted chain to the caller-side chain at
// one call site: the receiver expression for receiver roots, the
// positional argument for parameter roots.
func translateChain(cs dlCallSite, root dlRoot, paramIdx int, rest string) (dlChain, bool) {
	var base ast.Expr
	switch root {
	case dlRootRecv:
		sel, ok := ast.Unparen(cs.call.Fun).(*ast.SelectorExpr)
		if !ok {
			return dlChain{}, false
		}
		base = sel.X
	case dlRootParam:
		if paramIdx >= len(cs.call.Args) {
			return dlChain{}, false
		}
		base = cs.call.Args[paramIdx]
	default:
		return dlChain{}, false
	}
	baseChain := exprChain(base)
	if baseChain == "" {
		return dlChain{}, false
	}
	chain := baseChain
	if rest != "" {
		chain += "." + rest
	}
	callerRoot, callerIdx := chainRoot(cs.caller, base)
	return dlChain{chain: chain, root: callerRoot, paramIdx: callerIdx}, true
}

// chainRoot classifies the root of a caller-side expression against the
// caller's own receiver and parameters.
func chainRoot(fn *FuncNode, e ast.Expr) (dlRoot, int) {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
			continue
		case *ast.StarExpr:
			e = v.X
			continue
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				e = v.X
				continue
			}
			return dlRootOther, 0
		case *ast.Ident:
			return classifyIdent(fn, v.Name)
		default:
			return dlRootOther, 0
		}
	}
}

// classifyIdent matches a name against fn's receiver and parameters.
func classifyIdent(fn *FuncNode, name string) (dlRoot, int) {
	var ft *ast.FuncType
	if fn.Decl != nil {
		ft = fn.Decl.Type
		if fn.Decl.Recv != nil {
			for _, f := range fn.Decl.Recv.List {
				for _, id := range f.Names {
					if id.Name == name {
						return dlRootRecv, 0
					}
				}
			}
		}
	} else {
		ft = fn.Lit.Type
	}
	if ft.Params != nil {
		idx := 0
		for _, f := range ft.Params.List {
			for _, id := range f.Names {
				if id.Name == name {
					return dlRootParam, idx
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	return dlRootOther, 0
}

// dlWalker threads the armed set through one body in evaluation order.
type dlWalker struct {
	st     *dlState
	node   *FuncNode
	armed  map[string]dlKind
	needs  []dlNeed
	direct []dlNeed
	sites  []dlCallSite
}

func (w *dlWalker) clone() map[string]dlKind {
	out := make(map[string]dlKind, len(w.armed))
	for k, v := range w.armed {
		out[k] = v
	}
	return out
}

// exitArms renders the receiver/param-rooted part of the exit armed set
// as the function's arming summary, sorted so the fixpoint comparison is
// deterministic across map iteration orders.
func (w *dlWalker) exitArms() []dlArm {
	var out []dlArm
	for chain, kinds := range w.armed {
		seg := chain
		if i := strings.IndexByte(chain, '.'); i >= 0 {
			seg = chain[:i]
		}
		root, idx := classifyIdent(w.node, seg)
		if root == dlRootOther {
			continue
		}
		for _, k := range []dlKind{dlRead, dlWrite} {
			if kinds&k != 0 {
				out = append(out, dlArm{root: root, paramIdx: idx, rest: restOf(chain), kind: k})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.root != b.root {
			return a.root < b.root
		}
		if a.paramIdx != b.paramIdx {
			return a.paramIdx < b.paramIdx
		}
		if a.rest != b.rest {
			return a.rest < b.rest
		}
		return a.kind < b.kind
	})
	return out
}

// mergeBranches intersects the non-nil branch outcomes into the armed
// set ("armed on every path"); nil outcomes left the function.
func (w *dlWalker) mergeBranches(outs ...map[string]dlKind) {
	var live []map[string]dlKind
	for _, o := range outs {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return // all branches terminate; code after is unreachable
	}
	merged := live[0]
	for _, o := range live[1:] {
		for k, v := range merged {
			if ov, ok := o[k]; !ok || ov&v != v {
				if nv := v & o[k]; nv != 0 {
					merged[k] = nv
				} else {
					delete(merged, k)
				}
			}
		}
	}
	w.armed = merged
}

// runBranch walks stmts on a clone and returns the resulting armed set,
// or nil when the branch always transfers control out.
func (w *dlWalker) runBranch(stmts []ast.Stmt) map[string]dlKind {
	saved := w.armed
	w.armed = w.clone()
	for _, s := range stmts {
		w.walkStmt(s)
	}
	out := w.armed
	w.armed = saved
	if terminates(stmts) {
		return nil
	}
	return out
}

func (w *dlWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			w.walkStmt(stmt)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.GoStmt:
		// The spawned body is its own root; arguments evaluate here.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}
	case *ast.DeferStmt:
		// Deferred calls run at exit: they arm nothing for ops in the
		// body, and their own I/O is walked when the literal/decl is.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		body := w.runBranch(s.Body.List)
		alt := w.clone() // no else: fallthrough keeps the pre-state
		if s.Else != nil {
			alt = w.runBranch([]ast.Stmt{s.Else})
		}
		w.mergeBranches(body, alt)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		// The body may run zero times: walk it on a clone for its own
		// findings, then resume from the entry state.
		stmts := make([]ast.Stmt, 0, len(s.Body.List)+1)
		stmts = append(stmts, s.Body.List...)
		if s.Post != nil {
			stmts = append(stmts, s.Post)
		}
		w.runBranch(stmts)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.runBranch(s.Body.List)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		w.walkSwitchBody(s.Body, false)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkSwitchBody(s.Body, false)
	case *ast.SelectStmt:
		w.walkSwitchBody(s.Body, true)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// walkSwitchBody merges case clauses by intersection; a switch with no
// default may skip every case, so the pre-state joins the merge.
func (w *dlWalker) walkSwitchBody(body *ast.BlockStmt, isSelect bool) {
	outs := []map[string]dlKind{}
	hasDefault := false
	for _, clause := range body.List {
		switch cc := clause.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			outs = append(outs, w.runBranch(cc.Body))
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			outs = append(outs, w.runBranch(cc.Body))
		}
	}
	if !hasDefault && !isSelect {
		outs = append(outs, w.clone())
	}
	w.mergeBranches(outs...)
}

func (w *dlWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate root
		case *ast.CallExpr:
			// Arguments first (inner calls arm/need before the outer).
			for _, arg := range n.Args {
				w.walkExpr(arg)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				w.walkExpr(sel.X)
			}
			w.handleCall(n)
			return false
		}
		return true
	})
}

// dlArmMethod classifies deadline-arming method names.
func dlArmMethod(name string) dlKind {
	switch name {
	case "SetReadDeadline":
		return dlRead
	case "SetWriteDeadline":
		return dlWrite
	case "SetDeadline":
		return dlRead | dlWrite
	}
	return 0
}

// dlIOMethod classifies net.Conn I/O method names by deadline kind.
func dlIOMethod(name string) dlKind {
	switch name {
	case "Read", "ReadFrom", "ReadFromUDP", "ReadFromIP",
		"ReadFromUDPAddrPort", "ReadMsgUDP", "ReadMsgUDPAddrPort":
		return dlRead
	case "Write", "WriteTo", "WriteToUDP", "WriteToIP",
		"WriteToUDPAddrPort", "WriteMsgUDP", "WriteMsgUDPAddrPort":
		return dlWrite
	}
	return 0
}

// handleCall processes one call: arming, I/O sinks, io helpers over net
// conns, and callee summary substitution.
func (w *dlWalker) handleCall(call *ast.CallExpr) {
	pkg := w.node.Pkg
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvT := typeOf(pkg, sel.X)
		if recvT != nil && isNetConnType(recvT) {
			if kind := dlArmMethod(sel.Sel.Name); kind != 0 {
				if chain := exprChain(sel.X); chain != "" {
					w.armed[chain] |= kind
				}
				return
			}
			if kind := dlIOMethod(sel.Sel.Name); kind != 0 {
				w.sink(call.Pos(), sel.X, kind, recvT.String()+"."+sel.Sel.Name)
				return
			}
		}
		// io helpers that drive a net conn: the conn is an argument.
		if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "io" {
			switch sel.Sel.Name {
			case "ReadFull", "ReadAll":
				w.ioArgSink(call, 0, dlRead, "io."+sel.Sel.Name)
			case "Copy", "CopyN":
				w.ioArgSink(call, 0, dlWrite, "io."+sel.Sel.Name)
				w.ioArgSink(call, 1, dlRead, "io."+sel.Sel.Name)
			case "WriteString":
				w.ioArgSink(call, 0, dlWrite, "io."+sel.Sel.Name)
			}
			return
		}
	}
	callees := w.st.prog.resolveCall(pkg, call)
	if len(callees) == 0 {
		return
	}
	w.sites = append(w.sites, dlCallSite{
		caller: w.node, call: call, callees: callees, armed: w.clone(),
	})
	// Substitute callee arms into the caller's armed set.
	for _, callee := range callees {
		for _, arm := range w.st.arms[callee] {
			cs := dlCallSite{caller: w.node, call: call}
			if chain, ok := translateChain(cs, arm.root, arm.paramIdx, arm.rest); ok {
				w.armed[chain.chain] |= arm.kind
			}
		}
	}
}

// ioArgSink treats argument i of an io helper as a sink when it is a
// net connection.
func (w *dlWalker) ioArgSink(call *ast.CallExpr, i int, kind dlKind, op string) {
	if i >= len(call.Args) {
		return
	}
	arg := call.Args[i]
	t := typeOf(w.node.Pkg, arg)
	if t == nil || !isNetConnType(t) {
		return
	}
	w.sink(call.Pos(), arg, kind, op)
}

// sink records one I/O operation on conn expression e needing kind.
func (w *dlWalker) sink(pos token.Pos, e ast.Expr, kind dlKind, op string) {
	chain := exprChain(e)
	if chain == "" {
		return // provenance unknown — the chain cannot be armed or matched
	}
	if w.armed[chain]&kind == kind {
		return
	}
	if w.st.annot[w.node][chain] {
		return
	}
	seg := chain
	if i := strings.IndexByte(chain, '.'); i >= 0 {
		seg = chain[:i]
	}
	root, idx := classifyIdent(w.node, seg)
	need := dlNeed{
		root: root, paramIdx: idx, rest: restOf(chain), kind: kind,
		pos: pos, op: op, chain: chain, owner: w.node,
	}
	if root == dlRootOther {
		w.direct = append(w.direct, need)
		return
	}
	w.needs = append(w.needs, need)
}
