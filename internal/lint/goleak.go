// Checker goleak: goroutine-leak shapes. A `go func() { ... }()` literal
// that receives from a channel inside a loop with no escape route blocks
// forever when the producer stops — or spins forever reading zero values
// once the channel is closed. In the monitoring pipeline these leaks pile
// up one per switch connection, which is exactly the slow-resource-death
// mode a long-running verification server cannot afford.
//
// Accepted escape shapes, per receive:
//   - `for range ch` — terminates when the channel is closed;
//   - `v, ok := <-ch` — the comma-ok form, which observes closure;
//   - a receive that is a case of a `select` which also has a
//     `<-ctx.Done()`-style case (any `*.Done()` call) or a
//     `<-time.After(...)` timeout case.
//
// Receives outside loops are bounded and never flagged.

package lint

import (
	"go/ast"
	"go/token"
)

// GoLeak flags go-func literals that loop on a channel receive with no
// ctx.Done()/close/timeout escape path.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "go func literals must not loop on a channel receive without a ctx.Done()/close/timeout escape",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoLit(pass, fl)
			return true
		})
	}
}

// checkGoLit scans one goroutine literal for unescaped receive loops.
func checkGoLit(pass *Pass, fl *ast.FuncLit) {
	// Walk with a stack of enclosing loops so each receive knows whether
	// it repeats.
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if n != fl {
				return // nested literals are visited via their own go statements, if any
			}
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.RangeStmt:
			// `for range ch` over a channel is itself a close path; the
			// body still runs inside a loop for any other receives.
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.SelectStmt:
			if selectHasEscape(pass, n) {
				// Escapable select: its direct receives are fine, but
				// nested statements keep their loop context.
				for _, clause := range n.Body.List {
					cc := clause.(*ast.CommClause)
					for _, stmt := range cc.Body {
						walk(stmt, inLoop)
					}
				}
				return
			}
		case *ast.AssignStmt:
			// Comma-ok receive: v, ok := <-ch.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if isReceive(n.Rhs[0]) {
					return
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && inLoop {
				pass.Reportf(n.Pos(),
					"goroutine receives from a channel in a loop with no ctx.Done()/close/timeout escape; it leaks if the sender stops")
				return
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(fl, false)
}

// walkChildren applies f to each direct child node of n.
func walkChildren(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// isReceive reports whether e is a channel receive expression.
func isReceive(e ast.Expr) bool {
	ue, ok := e.(*ast.UnaryExpr)
	return ok && ue.Op == token.ARROW
}

// selectHasEscape reports whether the select has a case that can observe
// cancellation: a receive from a `*.Done()` call, a receive from
// `time.After(...)`, or a comma-ok receive. Shared with the lifecycle
// checker via selectHasEscapeInfo.
func selectHasEscape(pass *Pass, sel *ast.SelectStmt) bool {
	return selectHasEscapeInfo(pass.Info, sel)
}
