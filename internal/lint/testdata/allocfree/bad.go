// Known-bad corpus for the allocfree checker: every allocating construct
// directly inside an annotated function, plus one reached through a
// two-deep unannotated call chain.

package allocfree

import "fmt"

type pair struct {
	x, y int
}

//lint:allocfree
func builtins(n int) map[int]int {
	return make(map[int]int, n) // want "make"
}

//lint:allocfree
func grows(xs []int, n int) []int {
	return append(xs, n) // want "append"
}

//lint:allocfree
func fresh() *pair {
	return new(pair) // want "new"
}

//lint:allocfree
func escapes() *pair {
	return &pair{x: 1} // want "escapes"
}

//lint:allocfree
func literal() []int {
	return []int{1, 2, 3} // want "slice literal"
}

//lint:allocfree
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//lint:allocfree
func convert(s string) []byte {
	return []byte(s) // want "string conversion"
}

//lint:allocfree
func format(p *pair) string {
	return fmt.Sprintf("pair=%v", p) // want "variadic call"
}

func sinkAny(v any) {}

//lint:allocfree
func box(v int) {
	sinkAny(v) // want "interface boxing"
}

//lint:allocfree
func captures(n int) int {
	f := func() int { return n } // want "function literal"
	return f()
}

//lint:allocfree
func spawns() {
	go sinkAny(nil) // want "go statement"
}

// The interprocedural case: the allocation is two unannotated frames
// down, and the diagnostic carries the chain.
//
//lint:allocfree
func viaHelpers(xs []int) int {
	return helperA(xs) // want "which allocates"
}

func helperA(xs []int) int {
	return helperB(xs)
}

func helperB(xs []int) int {
	ys := make([]int, len(xs))
	copy(ys, xs)
	return len(ys)
}
