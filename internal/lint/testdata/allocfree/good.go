// Known-good corpus for the allocfree checker: in-place decodes, cold
// error branches that allocate, annotated callees, spread variadics,
// pointer-shaped interface arguments, and amortized map writes.

package allocfree

import "fmt"

type item struct {
	a, b byte
}

// decodeInto is the UnmarshalReportInto shape: early error returns may
// allocate (fmt.Errorf is on the cold path), the fall-through decode is
// a value struct literal written in place.
//
//lint:allocfree
func decodeInto(b []byte, it *item) error {
	if len(b) < 2 {
		return fmt.Errorf("allocfree corpus: short buffer (%d bytes)", len(b))
	}
	*it = item{a: b[0], b: b[1]}
	return nil
}

// process calls an annotated callee: the callee is checked under its own
// directive, not re-flagged at the call site.
//
//lint:allocfree
func process(b []byte, it *item) bool {
	if err := decodeInto(b, it); err != nil {
		return false
	}
	return it.a == 1
}

// sum is not annotated but is allocation-free, so annotated callers may
// use it.
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//lint:allocfree
func tally(xs []int) int {
	return sum(xs)
}

// lookupWalk is the BDD-membership shape: index chasing with a cold
// panic guard.
//
//lint:allocfree
func lookupWalk(nodes []uint32, start int) uint32 {
	i := start
	for nodes[i] != 0 {
		if i >= len(nodes) {
			panic("allocfree corpus: walk escaped the arena")
		}
		i = int(nodes[i])
	}
	return nodes[i]
}

// relay spreads its variadic through: the caller's slice is passed as
// is, nothing is materialized.
//
//lint:allocfree
func relay(sink func(...int), vals ...int) {
	sink(vals...)
}

// pointerBox passes a pointer where an interface is expected — a single
// word, no box.
//
//lint:allocfree
func pointerBox(sink func(any), it *item) {
	sink(it)
}

// count performs the amortized map write the contract tolerates (the
// collector's per-source counters).
//
//lint:allocfree
func count(counts map[byte]uint64, it *item) {
	counts[it.a]++
}
