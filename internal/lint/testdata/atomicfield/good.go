// Known-good corpus for the atomicfield checker: uniformly atomic
// access to function-style words, typed atomics used only as method
// receivers or through pointers, and plain fields that never touch
// sync/atomic staying free.

package atomicfield

import "sync/atomic"

// okCounters uses the function-style API consistently: every access to
// hits goes through sync/atomic.
type okCounters struct {
	hits uint64
}

func (c *okCounters) inc()         { atomic.AddUint64(&c.hits, 1) }
func (c *okCounters) read() uint64 { return atomic.LoadUint64(&c.hits) }
func (c *okCounters) reset()       { atomic.StoreUint64(&c.hits, 0) }

// Package-level word, same discipline.
var okTotal uint64

func bumpTotal() {
	atomic.AddUint64(&okTotal, 1)
	atomic.CompareAndSwapUint64(&okTotal, 1, 2)
}

// okGauge holds typed atomics: method calls and address-takes are the
// two permitted uses.
type okGauge struct {
	n     atomic.Int64
	flag  atomic.Bool
	blob  atomic.Value
	which atomic.Pointer[okCounters]
}

func (g *okGauge) work(c *okCounters) int64 {
	g.n.Add(1)
	g.flag.Store(true)
	g.blob.Store("s")
	g.which.Store(c)
	p := &g.n // pointer to the atomic, not a copy
	p.Add(1)
	return g.n.Load()
}

// plain never touches sync/atomic, so ordinary access stays ordinary.
type plain struct {
	n int
}

func (p *plain) churn() int {
	p.n++
	p.n = 7
	return p.n
}
