// Known-bad corpus for the atomicfield checker: words updated through
// sync/atomic but also read or written plainly (fields, package vars,
// locals shared with a goroutine), and typed atomics copied by value.

package atomicfield

import "sync/atomic"

// mixed updates hits atomically in one method and touches it plainly in
// others — the classic torn counter.
type mixed struct {
	hits uint64
}

func (m *mixed) inc() { atomic.AddUint64(&m.hits, 1) }

func (m *mixed) read() uint64 {
	return m.hits // want "accessed with sync/atomic"
}

func (m *mixed) reset() {
	m.hits = 0 // want "accessed with sync/atomic"
}

func (m *mixed) bump() {
	m.hits++ // want "accessed with sync/atomic"
}

// Package-level word with one plain reader.
var total uint64

func addTotal() { atomic.AddUint64(&total, 1) }

func peekTotal() uint64 {
	return total // want "accessed with sync/atomic"
}

// A local shared with a goroutine: atomic in the closure, plain in the
// return — flow-blind, and rightly so.
func localMix() uint64 {
	var n uint64
	go func() {
		atomic.AddUint64(&n, 1)
	}()
	return n // want "accessed with sync/atomic"
}

// gauge holds a typed atomic; copying it smuggles the value out of the
// protocol.
type gauge struct {
	n atomic.Int64
}

func copyOut(g *gauge) atomic.Int64 {
	return g.n // want "used by value"
}

func copyLocal(g *gauge) int64 {
	tmp := g.n // want "used by value"
	return tmp.Load()
}

func passByValue(g *gauge, sink func(atomic.Int64)) {
	sink(g.n) // want "used by value"
}
