// Known-bad corpus for the tickleak checker: a ticker that never
// reaches Stop, a Stop hidden behind a branch, a Stop skipped by an
// early return, a discarded ticker handle, time.Tick (unstoppable by
// construction), time.After inside an unbounded loop, and a Timer.Reset
// with no drain guard.

package tickleak

import "time"

// The ticker is consumed forever and never stopped: its runtime timer
// survives this function on every path.
func pollForever(work chan int) {
	t := time.NewTicker(time.Second) // want "never stopped"
	for range t.C {
		work <- 1
	}
}

// Stop only happens on one branch; the other returns with the timer
// still armed.
func stopOnFlag(flag bool) {
	t := time.NewTimer(time.Second)
	if flag {
		t.Stop() // want "not reached on every return path"
	}
	<-t.C
}

// The early return above the Stop leaks the timer whenever ok is false.
func stopAfterReturn(ok bool) {
	t := time.NewTimer(time.Second)
	if !ok {
		return
	}
	<-t.C
	t.Stop() // want "not reached on every return path"
}

// The handle is thrown away at the call: nothing can ever stop this
// ticker.
func discardedHandle() {
	time.NewTicker(time.Minute) // want "result is discarded"
}

// time.Tick has no Stop at all; the ticker runs for the process
// lifetime.
func tickForever(work chan int) {
	for range time.Tick(time.Second) { // want "time.Tick leaks its ticker"
		work <- 1
	}
}

// Each iteration of the unbounded loop allocates a timer that nothing
// cancels until it fires.
func timeoutLoop(in chan int) int {
	total := 0
	for {
		select {
		case v, ok := <-in:
			if !ok {
				return total
			}
			total += v
		case <-time.After(time.Second): // want "pins a fresh timer"
			return total
		}
	}
}

// Reset without draining: a pending fire from the old window delivers
// into the new one.
func rearmRacy(t *time.Timer, d time.Duration) {
	t.Reset(d) // want "without draining"
}
