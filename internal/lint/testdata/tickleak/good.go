// Known-good corpus for the tickleak checker: deferred Stops (direct
// and through a deferred closure), a straight-line Stop that dominates
// every return, handles that escape to a caller or a struct (ownership
// moves with them), time.After outside loops and in bounded loops, and
// the canonical drain-then-Reset guard.

package tickleak

import "time"

func fire(work chan int) { work <- 1 }

// The canonical shape: defer t.Stop() right after creation.
func pollUntil(work chan int, stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fire(work)
		case <-stop:
			return
		}
	}
}

// A deferred closure that reaches Stop dominates every return too.
func deferredClosureStop(work chan int) {
	t := time.NewTicker(time.Second)
	defer func() {
		t.Stop()
	}()
	<-t.C
	fire(work)
}

// A straight-line Stop before any return or branch covers the only
// path there is.
func oneShot(c chan int) int {
	t := time.NewTimer(time.Second)
	v := 0
	select {
	case <-t.C:
	case v = <-c:
	}
	t.Stop()
	return v
}

// The handle escapes to the caller: stopping it is the caller's
// obligation, not this function's.
func newHeartbeat() *time.Ticker {
	t := time.NewTicker(time.Minute)
	return t
}

// The handle escapes into a struct: the owner type's Close carries the
// Stop.
type beacon struct {
	tick *time.Ticker
}

func (b *beacon) start() {
	b.tick = time.NewTicker(time.Minute)
}

func (b *beacon) stop() {
	b.tick.Stop()
}

// time.After outside any loop arms exactly one timer.
func waitOnce(d time.Duration) {
	<-time.After(d)
}

// A bounded loop burns at most a fixed number of timers — not the
// per-iteration pin the unbounded form is.
func waitThrice(d time.Duration) {
	for i := 0; i < 3; i++ {
		<-time.After(d)
	}
}

// The canonical rearm guard: Stop, drain the channel if the fire
// already landed, then Reset into the new window.
func rearmSafe(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		<-t.C
	}
	t.Reset(d)
}
