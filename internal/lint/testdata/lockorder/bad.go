// Known-bad corpus for the lockorder checker: a direct two-mutex ABBA
// deadlock and an interprocedural cycle where each nested acquisition
// hides one call deep. Each cycle is reported once, at its earliest
// nested acquisition, with every Lock site in the message.

package lockorder

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// abThenBa and baThenAb acquire the same two mutexes in opposite orders:
// two goroutines running them concurrently deadlock.
func (p *pair) abThenBa() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want "lock order cycle"
	defer p.b.Unlock()
}

func (p *pair) baThenAb() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}

type svc struct{ mu sync.Mutex }

type conn struct{ wmu sync.Mutex }

// flush holds svc.mu while send acquires conn.wmu; redial holds
// conn.wmu while reset acquires svc.mu — the same ABBA, one call deep
// on each side.
func (s *svc) flush(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.send() // want "lock order cycle"
}

func (c *conn) send() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
}

func (c *conn) redial(s *svc) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	s.reset()
}

func (s *svc) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
