// Known-good corpus for the lockorder checker: a consistent global
// acquisition order (a before b everywhere, directly or through calls),
// sequential non-nested locking, and the early-exit unlock pattern must
// all stay silent.

package lockorder

import "sync"

type ordered struct {
	a sync.Mutex
	b sync.Mutex

	closed  bool
	pending int
}

// Both writers nest b under a — same order, no cycle.
func (o *ordered) writeBoth() {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	defer o.b.Unlock()
	o.pending++
}

func (o *ordered) drainBoth() {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	defer o.b.Unlock()
	o.pending = 0
}

// Sequential locking never nests: no edge in either direction.
func (o *ordered) sequential() {
	o.b.Lock()
	o.pending++
	o.b.Unlock()
	o.a.Lock()
	o.closed = true
	o.a.Unlock()
}

// The early-exit branch releases and returns; the fallthrough path's
// nested acquisition still follows the global a-then-b order.
func (o *ordered) earlyExit() {
	o.a.Lock()
	if o.closed {
		o.a.Unlock()
		return
	}
	o.b.Lock()
	o.pending++
	o.b.Unlock()
	o.a.Unlock()
}

// Nesting through a call in the same a-then-b direction as everyone
// else.
func (o *ordered) nestedViaCall() {
	o.a.Lock()
	defer o.a.Unlock()
	o.bumpB()
}

func (o *ordered) bumpB() {
	o.b.Lock()
	defer o.b.Unlock()
	o.pending++
}
