// Known-good corpus for wiretaint: the same shapes as bad.go with the
// sanitizers the checker must honor. Any diagnostic in this file is a
// test failure.
package corpus

import (
	"io"
	"net"
)

// decodeChecked guards the length before the access.
func decodeChecked(b []byte) int {
	if len(b) < 8 {
		return -1
	}
	return int(b[6])
}

// decodeAlloc bounds the wire-derived size against the real input length
// before allocating — the dominant sanitizer shape in the repo.
func decodeAlloc(b []byte) []byte {
	if len(b) < 2 {
		return nil
	}
	n := int(b[0])<<8 | int(b[1])
	if n > len(b) {
		return nil
	}
	out := make([]byte, n)
	copy(out, b[2:])
	return out
}

// recvBounded clamps the announced length against a named constant
// before allocating the body — the transport Recv shape.
func recvBounded(c net.Conn) ([]byte, error) {
	const maxFrame = 1024
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(c, hdr); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if n <= 0 || n > maxFrame {
		return nil, io.ErrUnexpectedEOF
	}
	body := make([]byte, n)
	_, err := io.ReadFull(c, body)
	return body, err
}

// parseSum ranges over the wire bytes: range is bounded by construction
// and needs no explicit length check.
func parseSum(b []byte) int {
	sum := 0
	for _, v := range b {
		sum += int(v)
	}
	return sum
}

// sliceThird has an access-kind parameter sink, like bad.go's third.
func sliceThird(b []byte) byte { return b[2] }

// useThirdChecked pins the length before the call, satisfying the
// callee's access sink.
func useThirdChecked(b []byte) byte {
	if len(b) < 3 {
		return 0
	}
	return sliceThird(b)
}

// loopToLen iterates to len(b): the bound is ground truth, not taint.
func loopToLen(b []byte) int {
	sum := 0
	for i := 0; i < len(b); i++ {
		sum += int(b[i])
	}
	return sum
}
