// Known-bad corpus for wiretaint: wire-derived lengths and offsets
// reaching sinks without a dominating bounds check. Every marked line
// must produce exactly one diagnostic containing the quoted substring.
package corpus

import (
	"io"
	"net"
)

// decodeHeader is decode-shaped, so b is wire input; indexing it with no
// length check is the truncated-frame panic class.
func decodeHeader(b []byte) int {
	return int(b[6]) // want "no length check"
}

// parseCount length-checks the accesses but allocates with an unchecked
// wire-derived size: a hostile 0xffff count exhausts memory.
func parseCount(b []byte) []int {
	if len(b) < 8 {
		return nil
	}
	n := int(b[0])<<8 | int(b[1])
	return make([]int, n) // want "allocation size"
}

// parseItems iterates under an unchecked wire-derived bound.
func parseItems(b []byte) int {
	if len(b) < 2 {
		return 0
	}
	n := int(b[1])
	sum := 0
	for i := 0; i < n; i++ { // want "loop bound"
		sum += i
	}
	return sum
}

// parseAt uses a wire byte to index an unrelated table.
func parseAt(b []byte, table []string) string {
	if len(b) < 1 {
		return ""
	}
	return table[b[0]] // want "index"
}

// alloc reaches make with its parameter: a sink summary every caller
// holding tainted n inherits.
func alloc(n int) []byte {
	return make([]byte, n)
}

// recvAndAlloc reads a length off the network and hands it to alloc
// without bounding it first — the interprocedural value-sink case.
func recvAndAlloc(c net.Conn) ([]byte, error) {
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(c, hdr); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	return alloc(n), nil // want "passed to wiretaint.alloc"
}

// decodeLen introduces the taint (its parameter is wire input by name
// contract) and returns it; the sink fires in the caller below.
func decodeLen(b []byte) int {
	if len(b) < 4 {
		return 0
	}
	return int(b[2])<<8 | int(b[3])
}

// buildFromPeer reslices with a bound whose taint was introduced inside
// the callee — the interprocedural taint-from-callee case.
func buildFromPeer(b []byte, pool []byte) []byte {
	n := decodeLen(b)
	return pool[:n] // want "slice bound"
}

// third indexes a fixed offset without checking; callers must pin the
// length first. The param-only taint stays symbolic here (no diagnostic
// on this function) and surfaces at the unchecked call site below.
func third(b []byte) byte {
	return b[2]
}

// decodeTail forwards unchecked wire bytes into third — the
// interprocedural access-sink case.
func decodeTail(b []byte) byte {
	return third(b) // want "passed to wiretaint.third"
}
