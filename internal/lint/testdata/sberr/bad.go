// Known-bad corpus for the sberr checker: southbound sends whose error
// result is discarded.

package sberr

import "veridp/internal/openflow"

func ignoreSend(c *openflow.Conn, m *openflow.Message) {
	c.Send(m) // want "discarded"
}

func blankFlowMod(c *openflow.Conn, f *openflow.FlowMod) {
	_, _ = c.SendFlowMod(f) // want "blank"
}

func deferredSend(c *openflow.Conn, m *openflow.Message) {
	defer c.Send(m) // want "defer"
}

func goSend(c *openflow.Conn, m *openflow.Message) {
	go c.Send(m) // want "go statement"
}

func ignoreBarrier(c *openflow.Conn, xid uint32) {
	c.SendBarrierReply(xid) // want "discarded"
}
