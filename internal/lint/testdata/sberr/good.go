// Known-good corpus for the sberr checker: sends with the error
// returned, checked, or bound to a live variable; non-send Conn methods
// stay out of scope.

package sberr

import "veridp/internal/openflow"

func returnedSend(c *openflow.Conn, m *openflow.Message) error {
	return c.Send(m)
}

func checkedSend(c *openflow.Conn, m *openflow.Message) {
	if err := c.Send(m); err != nil {
		panic(err)
	}
}

func boundFlowMod(c *openflow.Conn, f *openflow.FlowMod) (uint32, error) {
	xid, err := c.SendFlowMod(f)
	if err != nil {
		return 0, err
	}
	return xid, nil
}

func recvOutOfScope(c *openflow.Conn) *openflow.Message {
	m, err := c.Recv()
	if err != nil {
		return nil
	}
	return m
}

func xidOutOfScope(c *openflow.Conn) uint32 {
	return c.NextXid() // not a Send*: no error to lose
}
