// Known-good corpus for the snapfreeze checker: construction-time writes
// to fresh values, self-appends to append-only slices, fresh-constructor
// results, and freely mutable unpublished types.

package snapfreeze

import "sync/atomic"

// snap is published through an atomic pointer below; every field is
// annotated, so the completeness rule is satisfied.
type snap struct {
	epoch uint64         // frozen after publish
	table map[string]int // frozen after publish
	nodes []uint32       // append-only
}

var cur atomic.Pointer[snap]

// construct builds and publishes a snapshot: the writes all land on a
// fresh local, which is construction, not mutation.
func construct() {
	s := &snap{table: make(map[string]int)}
	s.epoch = 1
	s.table["a"] = 1
	s.nodes = append(s.nodes, 7)
	s.nodes[0] = 8 // still fresh: not yet published
	cur.Store(s)
}

// newSnap is a fresh constructor: it only ever returns values it built
// itself, so callers may finish initializing the result.
func newSnap() *snap {
	return &snap{table: make(map[string]int)}
}

// viaConstructor mutates a constructor result before publishing it.
func viaConstructor() {
	s := newSnap()
	s.epoch = 2
	s.table["b"] = 2
	cur.Store(s)
}

// viaNew proves new(T) results are fresh too.
func viaNew() {
	s := new(snap)
	s.epoch = 3
	cur.Swap(s)
}

// grow performs the one permitted append-only mutation: growing the
// slice through a self-append, even on a possibly-published value.
func grow(s *snap) {
	s.nodes = append(s.nodes, 9)
}

// read-only uses of frozen state are always fine.
func observe(s *snap) (uint64, int) {
	return s.epoch, len(s.nodes)
}

// scratch is never published anywhere, so its fields need no annotations
// and may be written freely.
type scratch struct {
	n     int
	items []int
}

func churn(s *scratch) {
	s.n++
	s.items = nil
	s.items = append(s.items, 1)
	s.items[0] = 2
}
