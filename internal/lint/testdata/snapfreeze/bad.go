// Known-bad corpus for the snapfreeze checker: writes to frozen fields
// of possibly-published values, publish-then-mutate in one body,
// element writes and replacement of append-only slices, and a published
// type with an unannotated field.

package snapfreeze

import "sync/atomic"

// state is published via badPtr below; its fields are annotated, and the
// functions underneath violate the contract.
type state struct {
	gen   uint64   // frozen after publish
	arena []uint32 // append-only
}

var badPtr atomic.Pointer[state]

// mutateParam writes a frozen field of a parameter: the caller may have
// published the value already, so the write is flagged no matter who
// calls this helper.
func mutateParam(s *state) {
	s.gen = 42 // want "frozen after publish"
}

// bumpParam is the IncDec form of the same bug.
func bumpParam(s *state) {
	s.gen++ // want "frozen after publish"
}

// publishThenMutate loses freshness at the Store: the value is shared
// with concurrent readers from that point on.
func publishThenMutate() {
	s := &state{}
	s.gen = 1 // fresh: still fine
	badPtr.Store(s)
	s.gen = 2 // want "frozen after publish"
}

// stompElement writes into an append-only slice in place.
func stompElement(s *state) {
	s.arena[0] = 1 // want "append-only"
}

// replaceArena swaps the whole append-only slice out from under readers.
func replaceArena(s *state) {
	s.arena = nil // want "may only grow"
}

// copyInto mutates append-only elements through the copy builtin.
func copyInto(s *state, src []uint32) {
	copy(s.arena, src) // want "append-only"
}

// escaped values are no longer fresh: the callee may have published them.
func handOff(publish func(*state)) {
	s := &state{}
	publish(s)
	s.gen = 3 // want "frozen after publish"
}

// leaky is published over a tagged channel send but its field carries no
// annotation, so the completeness rule fires at the declaration.
type leaky struct {
	count int // want "carries no"
}

func sendOff(ch chan *leaky) {
	l := &leaky{}
	ch <- l // published
}
