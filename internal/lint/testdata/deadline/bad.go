// Known-bad corpus for the deadline checker: an unarmed write on a
// fresh conn, an arm of the wrong kind, an arm on only one branch, and
// a helper whose caller never arms the conn it passes in.

package deadline

import (
	"net"
	"time"
)

var payload = []byte("tag-report")

// No deadline at all: a dead peer parks this write forever.
func bareWrite() error {
	c, err := net.Dial("tcp", "127.0.0.1:6653")
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Write(payload) // want "without a dominating write deadline"
	return err
}

// The read arm does not cover the write: SetReadDeadline bounds Read
// only.
func wrongKind() error {
	c, err := net.Dial("tcp", "127.0.0.1:6653")
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(time.Second))
	_, err = c.Write(payload) // want "without a dominating write deadline"
	return err
}

// Armed on one branch only: the else path reaches the read bare, so no
// deadline dominates it.
func branchArm(slow bool) error {
	c, err := net.Dial("tcp", "127.0.0.1:6653")
	if err != nil {
		return err
	}
	defer c.Close()
	if slow {
		c.SetReadDeadline(time.Now().Add(time.Minute))
	}
	buf := make([]byte, 64)
	_, err = c.Read(buf) // want "without a dominating read deadline"
	return err
}

// The helper trusts its caller to have armed the conn — and relay
// never does, so the finding lands on the op with the caller named.
func pushUpstream(c net.Conn) error {
	_, err := c.Write(payload) // want "reaches a caller"
	return err
}

func relay(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return pushUpstream(c)
}
