// Known-good corpus for the deadline checker: arms that dominate the
// op on every path, a SetDeadline covering both kinds, a caller that
// arms before handing the conn down, and an annotated unit whose
// governance is documented rather than syntactic.

package deadline

import (
	"net"
	"time"
)

var beat = []byte("heartbeat")

// The straightforward discipline: arm, then write.
func armedWrite() error {
	c, err := net.Dial("tcp", "127.0.0.1:6653")
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetWriteDeadline(time.Now().Add(time.Second))
	_, err = c.Write(beat)
	return err
}

// SetDeadline arms both directions at once.
func bothKinds() error {
	c, err := net.Dial("tcp", "127.0.0.1:6653")
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(time.Second))
	if _, err := c.Write(beat); err != nil {
		return err
	}
	buf := make([]byte, 64)
	_, err = c.Read(buf)
	return err
}

// Armed on every branch: the merge keeps the deadline.
func branchBoth(slow bool) error {
	c, err := net.Dial("tcp", "127.0.0.1:6653")
	if err != nil {
		return err
	}
	defer c.Close()
	if slow {
		c.SetReadDeadline(time.Now().Add(time.Minute))
	} else {
		c.SetReadDeadline(time.Now().Add(time.Second))
	}
	buf := make([]byte, 64)
	_, err = c.Read(buf)
	return err
}

// The helper leaves arming to its caller — and forward actually does
// it, so the interprocedural walk finds the chain armed at the site.
func sendDown(c net.Conn) error {
	_, err := c.Write(beat)
	return err
}

func forward(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetWriteDeadline(time.Now().Add(time.Second))
	return sendDown(c)
}

// lint:deadline conn=c the probe socket is closed by its owner's watchdog
// within a bounded window, so a per-write deadline would double-govern it
func annotatedProbe(c net.Conn) error {
	_, err := c.Write(beat)
	return err
}

func probe(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return annotatedProbe(c)
}
