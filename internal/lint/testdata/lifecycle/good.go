// Known-good corpus for the lifecycle checker: every accepted shutdown
// shape — ctx.Done()/time.After select cases, comma-ok receive with
// return, bounded loops, labeled break out of a select, break out of a
// range, and a ranged channel whose close() in the spawner is credited
// through the spawn-site argument substitution.

package lifecycle

import (
	"context"
	"time"
)

type loopset struct {
	in   chan int
	quit chan struct{}
	out  []int
}

// A ctx.Done() case is a cancellation signal even without an explicit
// return — the goroutine has a shutdown path.
func (l *loopset) spawnCtxOnly(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
			case v := <-l.in:
				l.out = append(l.out, v)
			}
		}
	}()
}

// Comma-ok receive with a return on closure.
func (l *loopset) spawnCommaOk() {
	go func() {
		for {
			v, ok := <-l.in
			if !ok {
				return
			}
			l.out = append(l.out, v)
		}
	}()
}

// A conditioned loop terminates on its own.
func (l *loopset) spawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			l.in <- i
		}
	}()
}

// A time.After case bounds every iteration.
func (l *loopset) spawnTimeout() {
	go func() {
		for {
			select {
			case <-time.After(time.Second):
			case v := <-l.in:
				l.out = append(l.out, v)
			}
		}
	}()
}

// The labeled break escapes the loop from inside the select.
func (l *loopset) spawnBreak() {
	go func() {
	loop:
		for {
			select {
			case v := <-l.in:
				if v < 0 {
					break loop
				}
				l.out = append(l.out, v)
			case <-l.quit:
				break loop
			}
		}
	}()
}

// A plain break in the range body leaves the loop.
func (l *loopset) spawnRangeBreak() {
	go func() {
		for v := range l.in {
			if v == 0 {
				break
			}
		}
	}()
}

// The spawner closes the channel it hands to consume: the callee's range
// over its parameter is credited with that close through the spawn-site
// arguments, so the goroutine drains and exits.
func produceConsume(vals []int) []int {
	ch := make(chan int)
	done := make(chan []int)
	go consume(ch, done)
	for _, v := range vals {
		ch <- v
	}
	close(ch)
	return <-done
}

func consume(ch chan int, done chan []int) {
	var got []int
	for v := range ch {
		got = append(got, v)
	}
	done <- got
}
