// Known-bad corpus for the lifecycle checker: goroutines that loop on
// channel operations with no reachable stop signal — a literal receive
// loop, a named function (followed through the spawn) ranging over a
// channel no loaded package closes, and a select loop whose only break
// is swallowed by the select itself.

package lifecycle

import "time"

type pump struct {
	in   chan int
	tick chan time.Time
	out  []int
}

// The literal loops on a receive forever: no select escape case, no
// return, no break.
func (p *pump) spawnRecvLoop() {
	go func() {
		for { // want "loops forever on channel operations"
			v := <-p.in
			p.out = append(p.out, v)
		}
	}()
}

// The spawn is followed to the named drain method, whose range can only
// exit when p.in is closed — and nothing in the program closes it.
func (p *pump) startDrain() {
	go p.drain()
}

func (p *pump) drain() {
	for v := range p.in { // want "ranges over a channel"
		p.out = append(p.out, v)
	}
}

// The break leaves the select, not the for — there is still no way out
// of the loop, and neither channel is a cancellation signal.
func (p *pump) spawnSelectLoop() {
	go func() {
		for { // want "loops forever on channel operations"
			select {
			case v := <-p.in:
				if v < 0 {
					break
				}
				p.out = append(p.out, v)
			case <-p.tick:
			}
		}
	}()
}
