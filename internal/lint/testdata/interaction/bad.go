// Interaction corpus: one function is simultaneously an allocation-checked
// hot path (//lint:allocfree) and a snapfreeze publication site. The two
// checkers must compose — each fires independently, at its own position:
// allocfree on the in-function allocation, snapfreeze on the post-publish
// mutation.
package interaction

import "sync/atomic"

type snap struct {
	table []int // frozen after publish
}

type box struct {
	cur atomic.Pointer[snap]
}

// publish allocates its snapshot inline (hot-path violation) and keeps
// mutating it after the Store (publication violation).
//
//lint:allocfree
func (b *box) publish(vals []int) {
	s := &snap{} // want "address-taken composite literal"
	s.table = vals
	b.cur.Store(s)
	s.table = nil // want "frozen after publish"
}
