package interaction

import "sync/atomic"

type state struct {
	entries []int // frozen after publish
}

type holder struct {
	cur atomic.Pointer[state]
}

// install is the clean split of the same duties: the caller builds the
// snapshot off the hot path, and the allocfree-annotated install only
// stores the finished value.
//
//lint:allocfree
func (h *holder) install(s *state) {
	h.cur.Store(s)
}

func build(vals []int) *state {
	s := &state{}
	s.entries = vals
	return s
}
