// Known-bad corpus for the lockedblock checker: every intrinsic blocking
// class performed under a held mutex, plus two interprocedural cases —
// a blocking operation two static calls away and one hidden behind an
// interface dispatch.

package lockedblock

import (
	"net"
	"sync"
	"time"
)

type queue struct {
	mu   sync.Mutex
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
	conn net.Conn
}

func (q *queue) sendLocked(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want "channel send while holding"
}

func (q *queue) recvLocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "channel receive while holding"
}

func (q *queue) sleepLocked() {
	q.mu.Lock()
	time.Sleep(time.Second) // want "time.Sleep while holding"
	q.mu.Unlock()
}

func (q *queue) waitLocked() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wg.Wait() // want "sync.WaitGroup.Wait while holding"
}

func (q *queue) writeLocked(b []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.conn.Write(b) // want "net I/O (Write) while holding"
}

func (q *queue) selectLocked() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "select with no default while holding"
	case v := <-q.ch:
		return v, true
	case <-q.done:
		return 0, false
	}
}

// flush holds the lock across push, which only reaches a channel send
// two static calls down — the report lands on the locked call site with
// the root cause chained in the message.
func (q *queue) flush(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.push(v) // want "may block"
}

func (q *queue) push(v int) { q.forward(v) }

func (q *queue) forward(v int) { q.ch <- v }

// broadcast dispatches through an interface; the only loaded
// implementation sends on a channel, so the locked call may block.
type sink interface{ publish(int) }

type chanSink struct{ out chan int }

func (c *chanSink) publish(v int) { c.out <- v }

type server struct {
	mu sync.Mutex
	s  sink
}

func (s *server) broadcast(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.s.publish(v) // want "may block"
}
