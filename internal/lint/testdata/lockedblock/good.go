// Known-good corpus for the lockedblock checker: blocking operations
// performed after release, non-blocking selects, sync.Cond.Wait (which
// releases the lock while parked), close() under lock, goroutine spawns
// under lock, and locked calls to helpers that never block.

package lockedblock

import "sync"

type worker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	out    chan int
	quit   chan struct{}
	q      []int
	closed bool
}

// Mutate under the lock, send after release.
func (w *worker) sendAfterUnlock(v int) {
	w.mu.Lock()
	w.q = append(w.q, v)
	w.mu.Unlock()
	w.out <- v
}

// The early-exit branch releases and returns; the fallthrough send also
// happens after release.
func (w *worker) sendUnlessClosed(v int) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.q = append(w.q, v)
	w.mu.Unlock()
	w.out <- v
}

// A select with a default never parks, even under the lock.
func (w *worker) trySend(v int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case w.out <- v:
		return true
	default:
		return false
	}
}

// Cond.Wait releases the mutex while parked — the canonical reason it
// exists — so it is not a blocking operation under its own lock.
func (w *worker) waitForWork() int {
	w.mu.Lock()
	for len(w.q) == 0 {
		w.cond.Wait()
	}
	v := w.q[0]
	w.q = w.q[1:]
	w.mu.Unlock()
	return v
}

// close() never blocks.
func (w *worker) shutdown() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	close(w.quit)
}

// Spawning under the lock is fine: the goroutine blocks itself, not the
// lock holder.
func (w *worker) spawnDrain() {
	w.mu.Lock()
	defer w.mu.Unlock()
	go w.drain()
}

func (w *worker) drain() {
	for v := range w.out {
		_ = v
	}
}

// A locked call to a helper that never blocks is fine.
func (w *worker) bump() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.grow()
}

func (w *worker) grow() { w.q = append(w.q, 0) }
