// Known-bad corpus for enumswitch: switches over a module-declared enum
// type that neither cover every constant nor carry a default.
package corpus

// Kind is a three-valued protocol enum.
type Kind int

const (
	KindA Kind = iota + 1
	KindB
	KindC
)

// name drops KindC on the floor with no default arm.
func name(k Kind) string {
	switch k { // want "missing KindC"
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "?"
}

// rank misses two constants; both must be named, sorted.
func rank(k Kind) int {
	switch k { // want "missing KindB, KindC"
	case KindA:
		return 0
	}
	return -1
}
