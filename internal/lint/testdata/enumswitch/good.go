// Known-good corpus for enumswitch: exhaustive coverage, explicit
// defaults, and the shapes the checker must stay silent on.
package corpus

// Mode is a two-valued enum.
type Mode int

const (
	ModeX Mode = iota
	ModeY
)

// modeName covers every declared constant.
func modeName(m Mode) string {
	switch m {
	case ModeX:
		return "x"
	case ModeY:
		return "y"
	}
	return "?"
}

// modeDefault says default out loud, which always satisfies the contract.
func modeDefault(m Mode) string {
	switch m {
	case ModeX:
		return "x"
	default:
		return "other"
	}
}

// combined covers constants in one multi-value case clause.
func combined(k Kind) bool {
	switch k {
	case KindA, KindB, KindC:
		return true
	}
	return false
}

// Single has one constant: not an enum, no exhaustiveness contract.
type Single int

// OnlyOne is the sole Single value.
const OnlyOne Single = 1

func singleName(s Single) string {
	switch s {
	case OnlyOne:
		return "one"
	}
	return "?"
}

// plainInt switches on an unnamed type: no declared constant set.
func plainInt(v int) string {
	switch v {
	case 1:
		return "one"
	}
	return "?"
}

// nonConst has a non-constant case expression: the checker cannot reason
// about coverage and stays silent.
func nonConst(m, dynamic Mode) string {
	switch m {
	case dynamic:
		return "dyn"
	}
	return "?"
}
