// Known-bad corpus for the retrybound checker: a dial loop that retries
// forever, an accept loop that hot-spins on a dead listener, a
// constant-sleep retry (paced but still unbounded), and a backoff that
// grows without a cap.

package retrybound

import (
	"net"
	"time"
)

// A dead controller makes this spin at full speed forever.
func dialForever(addr string) net.Conn {
	for { // want "retries net.Dial without a bound"
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		return c
	}
}

// The error is dropped on the floor: a closed listener returns
// instantly and the loop melts a core.
func acceptSpin(l net.Listener, sink chan net.Conn) {
	for { // want "retries Accept without a bound"
		c, err := l.Accept()
		if err != nil {
			continue
		}
		sink <- c
	}
}

// Sleeping a constant between attempts paces the loop but never ends
// it: no counter, no deadline, no context.
func redialPaced(addr string, sink chan net.Conn) {
	for { // want "retries net.Dial without a bound"
		c, err := net.Dial("tcp", addr)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		sink <- c
		return
	}
}

// The backoff doubles but nothing caps it and nothing cancels it: after
// an outage the next retry can be hours away, which is its own hang.
func redialGrowing(addr string) net.Conn {
	d := time.Millisecond
	for { // want "retries net.Dial without a bound"
		c, err := net.Dial("tcp", addr)
		if err != nil {
			time.Sleep(d)
			d *= 2
			continue
		}
		return c
	}
}
