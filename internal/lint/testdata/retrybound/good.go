// Known-good corpus for the retrybound checker: every retry loop here
// is bounded — by an attempt counter, a context check, a capped
// backoff, a cancellation-shaped select, or a helper that observes the
// context for the loop.

package retrybound

import (
	"context"
	"net"
	"time"
)

// A counter in the loop condition: classic bounded retry.
func dialAttempts(addr string) net.Conn {
	for i := 0; i < 5; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		return c
	}
	return nil
}

// The context check bounds the loop: cancellation ends the retrying.
func dialUntilCancelled(ctx context.Context, addr string) (net.Conn, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		return c, nil
	}
}

// An inline capped backoff: the sleep grows and a cap holds it at a
// ceiling, the accepted shape for accept loops without a context.
func acceptPatient(l net.Listener, sink chan net.Conn) {
	d := 5 * time.Millisecond
	for {
		c, err := l.Accept()
		if err != nil {
			time.Sleep(d)
			d *= 2
			if d > time.Second {
				d = time.Second
			}
			continue
		}
		d = 5 * time.Millisecond
		sink <- c
	}
}

// A cancellation-shaped select paces the retry and gives shutdown a way
// to end it.
func redialSelect(stop chan struct{}, addr string, sink chan net.Conn) {
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		sink <- c
		return
	}
}

// pause observes the context on the loop's behalf: retrying through it
// is conditioned on a live ctx, the netutil.Backoff.Sleep shape.
func pause(ctx context.Context, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	time.Sleep(d)
	return ctx.Err() == nil
}

func dialThroughHelper(ctx context.Context, addr string) net.Conn {
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			if !pause(ctx, 50*time.Millisecond) {
				return nil
			}
			continue
		}
		return c
	}
}
