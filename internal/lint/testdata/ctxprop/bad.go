// Known-bad corpus for the ctxprop checker: a context parameter buried
// mid-signature, a context stored in an unannotated struct field, a
// fresh root context minted outside main, and a spawned goroutine that
// sleep-polls forever with no cancellation path.

package ctxprop

import (
	"context"
	"time"
)

type server struct {
	name string
	ctx  context.Context // want "stored in a struct field"
	hits int
}

// The context hides at position two; every caller wiring cancellation
// scans the first parameter and misses it.
func (s *server) dialWith(addr string, ctx context.Context) error { // want "must be the first parameter"
	_ = addr
	return ctx.Err()
}

// Minting a root context outside main severs whatever lifetime the
// caller was governed by.
func (s *server) refresh() {
	s.ctx = context.Background() // want "severs the caller's cancellation chain"
}

// The spawned poller loops forever into time.Sleep: no return, no
// break, no select escape — it can never be shut down.
func (s *server) startPoller() {
	go func() {
		for { // want "loops forever into"
			time.Sleep(10 * time.Millisecond)
			s.hits++
		}
	}()
}
