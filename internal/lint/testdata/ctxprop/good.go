// Known-good corpus for the ctxprop checker: the context rides first in
// every signature, the one stored context names its lifetime, and the
// spawned poller watches ctx.Done() so cancellation reaches it.

package ctxprop

import (
	"context"
	"time"
)

type worker struct {
	name string
	// ctx: bound to the Serve call that started this worker
	ctx   context.Context
	beats int
}

// Context first, everything else after.
func (w *worker) dial(ctx context.Context, addr string) error {
	_ = addr
	return ctx.Err()
}

// The poller loops into time.Sleep too — but the select escape case
// gives cancellation a way in, so the loop can exit.
func (w *worker) startPoller(ctx context.Context, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-stop:
				return
			default:
			}
			time.Sleep(10 * time.Millisecond)
			w.beats++
		}
	}()
}
