// Known-good corpus for the bddmix checker: single-manager use, alias
// of the same manager, and refs from two managers that never cross.

package bddmix

import "veridp/internal/bdd"

func sameManager(t *bdd.Table) bdd.Ref {
	a := t.Var(0)
	b := t.NVar(1)
	return t.And(a, b)
}

func aliasedManager(t *bdd.Table) bdd.Ref {
	u := t
	x := u.Var(0)
	return t.Not(x) // u aliases t: same manager
}

func twoManagersKeptApart(t1, t2 *bdd.Table) bool {
	a := t1.Var(0)
	b := t2.Var(0)
	return t1.Implies(a, a) == t2.Implies(b, b)
}

func opaqueProvenance(t *bdd.Table, mk func() bdd.Ref) bdd.Ref {
	x := mk() // unknown producer: the checker stays silent
	return t.Not(x)
}
