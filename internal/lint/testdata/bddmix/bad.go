// Known-bad corpus for the bddmix checker: bdd.Refs minted by one
// manager flowing into methods of another, directly and via locals.

package bddmix

import "veridp/internal/bdd"

func mixViaLocal(t1, t2 *bdd.Table) bdd.Ref {
	x := t1.Var(0)
	return t2.Not(x) // want "cross"
}

func mixNested(t1, t2 *bdd.Table) bdd.Ref {
	return t1.And(t1.Var(1), t2.Var(2)) // want "cross"
}

func mixThroughCopy(t1, t2 *bdd.Table) bool {
	a := t1.Or(t1.Var(0), t1.Var(1))
	b := a
	return t2.Implies(b, b) // want "cross"
}
