// Known-good corpus for the ctxflow interaction test: the same relay
// shape with its lifetimes wired — the heartbeat watches ctx.Done(),
// the reconnect loop checks the context between attempts, and the
// flush arms a write deadline before touching the conn.

package ctxinteraction

import (
	"context"
	"net"
	"time"
)

type pump struct {
	addr string
	conn net.Conn
}

func (p *pump) start(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
			p.send()
		}
	}()
}

func (p *pump) redial(ctx context.Context) error {
	d := 5 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := net.Dial("tcp", p.addr)
		if err != nil {
			time.Sleep(d)
			d = min(2*d, time.Second)
			continue
		}
		p.conn = c
		return nil
	}
}

func (p *pump) send() {
	if p.conn == nil {
		return
	}
	p.conn.SetWriteDeadline(time.Now().Add(time.Second))
	p.conn.Write([]byte("beat"))
}
