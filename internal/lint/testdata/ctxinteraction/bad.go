// Known-bad corpus for the ctxflow interaction test: one relay type
// violates all three lifetime checkers at distinct positions — the
// spawned heartbeat loops forever with no cancellation (ctxprop), the
// reconnect loop retries dialing unboundedly (retrybound), and the
// flush writes on a conn no caller ever arms (deadline). Each checker
// must report its own violation without masking the others.

package ctxinteraction

import (
	"net"
	"time"
)

type relay struct {
	addr string
	conn net.Conn
}

// The heartbeat goroutine sleep-loops forever: no stop signal reaches
// it.
func (r *relay) start() {
	go func() {
		for { // want "loops forever into"
			time.Sleep(50 * time.Millisecond)
			r.flush()
		}
	}()
}

// Reconnecting forever, full speed: no counter, no context, no backoff.
func (r *relay) reconnect() {
	for { // want "retries net.Dial without a bound"
		c, err := net.Dial("tcp", r.addr)
		if err != nil {
			continue
		}
		r.conn = c
		return
	}
}

// The write trusts a deadline nobody ever arms.
func (r *relay) flush() {
	if r.conn == nil {
		return
	}
	r.conn.Write([]byte("beat")) // want "reaches a caller"
}
