// Known-good corpus for the wgsync checker: the conformant join shapes
// — Add before every spawn with a deferred Done, the split-function
// worker taking *sync.WaitGroup, a struct-field WaitGroup whose Add
// lives in a different method than the spawn, and a goroutine-local
// WaitGroup that legitimately Adds inside the goroutine that owns it.

package wgsync

import "sync"

func task() {}

// The canonical shape: Add before go, Done deferred first thing.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task()
		}()
	}
	wg.Wait()
}

// The worker is a named function taking the counter by pointer; the
// spawn-site argument flow pairs its deferred Done with the caller's
// Add.
func fanOutNamed(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go pointerWorker(&wg)
	}
	wg.Wait()
}

func pointerWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	task()
}

// A deferred closure that reaches Done counts as a deferred Done.
func deferredClosure() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			task()
			wg.Done()
		}()
		task()
	}()
	wg.Wait()
}

// A WaitGroup field: the spawn method Adds before its own go statement.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		task()
	}()
}

// The Add lives in a different method than the spawn: for shared
// (non-local) counters the ordering is credited whole-program.
func (p *pool) reserve(n int) {
	p.wg.Add(n)
}

func (p *pool) spawnReserved() {
	go func() {
		defer p.wg.Done()
		task()
	}()
}

func (p *pool) drain() {
	p.wg.Wait()
}

// A goroutine-local WaitGroup is its own join domain: Adds inside the
// goroutine that declared it do not race anyone's Wait.
func nestedJoin() {
	outer := make(chan struct{})
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			task()
		}()
		inner.Wait()
		close(outer)
	}()
	<-outer
}
