// Known-bad corpus for the wgsync checker: a spawn with no covering
// Add, an Add inside the spawned goroutine racing Wait, a spawn that
// never reaches Done, a conditional Done that early returns can skip, a
// named worker spawned right after Add that never calls Done, a
// WaitGroup parameter taken by value, and a counter copied by
// assignment.

package wgsync

import "sync"

func chore() {}

// The goroutine counts itself down, but nothing ever counted it up
// before the spawn: Wait can return before the work even starts.
func spawnNoAdd() {
	var wg sync.WaitGroup
	go func() { // want "no wg.Add precedes the spawn"
		defer wg.Done()
		chore()
	}()
	wg.Wait()
}

// The Add happens on the spawned side of the go statement: the waiter
// can observe the counter at zero before the goroutine announces itself.
func addInsideSpawn() {
	var wg sync.WaitGroup
	go func() { // want "no wg.Add precedes the spawn"
		wg.Add(1) // want "races Wait"
		defer wg.Done()
		chore()
	}()
	wg.Wait()
}

// Added, spawned — and the body never calls Done: Wait hangs forever.
func addNoDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "never calls wg.Done"
		chore()
	}()
	wg.Wait()
}

// The Done hides behind a branch with an early return above the
// fallback: paths that return past it undercount the join.
func condDone(jobs []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		for _, j := range jobs {
			if j > 0 {
				wg.Done() // want "not reached on every path"
				return
			}
		}
		wg.Done()
	}()
	wg.Wait()
}

// The spawn-site argument flow follows &wg into the named worker, whose
// body never touches Done.
func spawnNamedNoDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go forgetfulWorker(&wg) // want "never calls wg.Done"
	wg.Wait()
}

func forgetfulWorker(wg *sync.WaitGroup) {
	_ = wg
	chore()
}

// A by-value WaitGroup parameter: Done decrements a private copy.
func byValueWorker(wg sync.WaitGroup) { // want "passed by value"
	defer wg.Done()
	chore()
}

// Copying the counter splits it: Done on the copy never releases Wait
// on the original.
func copiedCounter() {
	var wg sync.WaitGroup
	wg.Add(1)
	snapshot := wg // want "copies the sync.WaitGroup"
	snapshot.Done()
	wg.Wait()
}
