// Known-bad corpus for the mutexbyvalue checker: every copy shape it
// must flag.

package mutexbyvalue

import "sync"

type counterBad struct {
	mu sync.Mutex
	n  int
}

func (c counterBad) Read() int { // want "value receiver"
	return c.n
}

func snapshot(c *counterBad) int {
	cp := *c // want "copies a value"
	return cp.n
}

func consume(counterBad) {}

func feed(c *counterBad) {
	consume(*c) // want "by value"
}

type wrapperBad struct {
	inner counterBad
}

func copyField(w *wrapperBad) int {
	local := w.inner // want "copies a value"
	return local.n
}
