// Known-good corpus for the mutexbyvalue checker: pointer receivers,
// fresh composite literals, and pointer passing must all stay silent.

package mutexbyvalue

import "sync"

type counterGood struct {
	mu sync.Mutex
	n  int
}

func (c *counterGood) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func fresh() *counterGood {
	c := counterGood{} // a fresh value, not a copy of a live lock
	return &c
}

func usePointer(c *counterGood) {
	c.Inc()
}

func viaPointerArg(f func(*counterGood), c *counterGood) {
	f(c)
}
