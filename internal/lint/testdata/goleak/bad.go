// Known-bad corpus for the goleak checker: goroutines that loop on a
// channel receive with no cancellation, close, or timeout escape.

package goleak

func leakyWorker(ch chan int, out chan<- int) {
	go func() {
		for {
			v := <-ch // want "leaks"
			out <- v
		}
	}()
}

func leakySelect(a, b chan int) {
	go func() {
		for {
			select {
			case v := <-a: // want "leaks"
				_ = v
			case v := <-b: // want "leaks"
				_ = v
			}
		}
	}()
}

func leakyDrain(ch chan struct{}) {
	go func() {
		for i := 0; i < 1000; i++ {
			<-ch // want "leaks"
		}
	}()
}
