// Known-good corpus for the goleak checker: every accepted escape shape
// — range-over-channel, comma-ok, ctx.Done() select, timeout select, and
// a bounded receive outside any loop.

package goleak

import (
	"context"
	"time"
)

func rangeWorker(ch chan int, out chan<- int) {
	go func() {
		for v := range ch { // terminates when ch is closed
			out <- v
		}
	}()
}

func commaOkWorker(ch chan int, out chan<- int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			out <- v
		}
	}()
}

func ctxWorker(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

func timeoutLoop(ch chan int) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-time.After(time.Second):
				return
			}
		}
	}()
}

func boundedWait(ch chan int) {
	go func() {
		<-ch // a single receive is bounded, not a loop
	}()
}
