// Interaction corpus: one function whose launch path breaks three
// protocols at three distinct sites — an undocumented buffered channel
// (chanflow), a drain goroutine that can never exit because nothing
// closes its channel (lifecycle), and a producer spawned after Add that
// never reaches Done (wgsync). Each checker must report exactly its own
// site.

package chaninteraction

import "sync"

type hub struct {
	wg  sync.WaitGroup
	out []int
}

func (h *hub) launch() {
	jobs := make(chan int, 8) // chanflow: undocumented buffer
	go func() {
		for v := range jobs { // lifecycle: nothing ever closes jobs
			h.out = append(h.out, v)
		}
	}()
	h.wg.Add(1)
	go func() { // wgsync: never calls h.wg.Done
		jobs <- 1
	}()
}
