// The conformant version of the interaction corpus: the buffer is
// documented, the producer is joined through the WaitGroup before the
// single owner closes the channel, and the drain goroutine exits on
// that close and signals its own completion. All three checkers must
// stay silent.

package chaninteraction

import "sync"

type mux struct {
	wg  sync.WaitGroup
	out []int
}

func (m *mux) launch() {
	// chan: buffered 8 — one slot per producer batch; drained before the close
	jobs := make(chan int, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := range jobs {
			m.out = append(m.out, v)
		}
	}()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		jobs <- 1
	}()
	m.wg.Wait()
	close(jobs)
	<-done
}
