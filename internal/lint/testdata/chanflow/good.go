// Known-good corpus for the chanflow checker: the conformant shapes of
// every clause — annotated buffers, one closing owner, branch-disjoint
// closes inside one function, deferred signal closes with later sends,
// rebinding after close, and select loops that block (with or without a
// default case). The checker must stay silent on all of it.

package chanflow

import "time"

// A documented buffer, annotated on the line above.
func annotatedAbove() chan int {
	// chan: buffered 4 — one slot per worker so producers never block on publish
	ch := make(chan int, 4)
	return ch
}

// A documented buffer, annotated on the same line.
func annotatedTrailing() chan string {
	out := make(chan string, 1) // chan: buffered 1 — reply slot; the responder never blocks
	return out
}

// An explicit capacity of zero is unbuffered spelled longhand; no
// annotation owed.
func explicitZero() chan int {
	return make(chan int, 0)
}

// The producer owns the close: it sends, then closes, and the consumer
// ranges until done.
func produce(out chan int, n int) {
	for i := 0; i < n; i++ {
		out <- i
	}
	close(out)
}

func consumeAll(in chan int) int {
	total := 0
	for v := range in {
		total += v
	}
	return total
}

// Branch-disjoint closes in one function are a single owner with two
// exits, not a double close: each path closes exactly once.
func branchClose(ok bool) chan struct{} {
	done := make(chan struct{})
	if ok {
		close(done)
		return done
	}
	close(done)
	return done
}

// A deferred close runs at function exit, after the sends below it.
func deferredSignal(out chan int) {
	defer close(out)
	out <- 1
	out <- 2
}

// Rebinding after close makes a fresh channel: the send targets the new
// value, not the closed one.
func rebind() {
	ch := make(chan int, 1) // chan: buffered 1 — corpus: sends must not block
	close(ch)
	ch = make(chan int, 1) // chan: buffered 1 — corpus: sends must not block
	ch <- 1
}

// A channel declared nil and made before the close is fine.
func lateMake() {
	var ch chan int
	ch = make(chan int)
	close(ch)
}

// The default path sleeps: every spin iteration pays real time, so the
// loop is a poller, not a busy-spin.
func pollWithBackoff(in chan int) int {
	total := 0
	for {
		select {
		case v, ok := <-in:
			if !ok {
				return total
			}
			total += v
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// No default case: the select blocks until a peer is ready.
func blockingSelect(a, b chan int) int {
	for {
		select {
		case v := <-a:
			return v
		case v := <-b:
			return v
		}
	}
}

// The loop body blocks on a send even though the select has a default:
// each iteration parks on the channel, so there is no spin.
func sendThenPoll(out chan int, probe chan struct{}) {
	for i := 0; i < 8; i++ {
		out <- i
		select {
		case <-probe:
		default:
		}
	}
}
