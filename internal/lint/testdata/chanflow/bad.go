// Known-bad corpus for the chanflow checker: every clause fires once —
// unannotated/malformed/stale buffered makes, a package channel with two
// closing owners, a spawned close racing a direct one, a send after
// close, a double close, a nil close, a close inside a loop, a
// consumer-side close, and a select-default busy-spin.

package chanflow

// Two functions both close the shared broadcast channel: whichever runs
// second panics.
var broadcast = make(chan struct{})

func ownerA() {
	close(broadcast)
}

func ownerB() {
	close(broadcast) // want "is also closed at"
}

// An undocumented buffer: the capacity encodes an assumption nobody
// wrote down.
func unannotatedBuffer() chan int {
	ch := make(chan int, 4) // want "without a justification"
	return ch
}

// The annotation exists but has no separator/reason, so the assumption
// is still unwritten.
func malformedAnnotation() chan int {
	// chan: buffered 4 because
	ch := make(chan int, 4) // want "malformed buffered-channel annotation"
	return ch
}

// The annotation says 2 but the code grew to 3: stale documentation is
// worse than none.
func staleAnnotation() chan int {
	// chan: buffered 2 — one slot per splice goroutine
	ch := make(chan int, 3) // want "annotation says"
	return ch
}

// A helper that closes its argument is spawned while the caller also
// closes the same channel directly: close racing close.
func closeHelper(ch chan int) {
	close(ch)
}

func spawnedDoubleClose() {
	ch := make(chan int)
	go closeHelper(ch)
	close(ch) // want "is also closed at"
}

// Straight-line send after close: this path always panics.
func sendAfterClose() {
	// chan: buffered 1 — corpus: the send below must not block
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "after it was closed"
}

// Straight-line double close.
func doubleClose() {
	done := make(chan struct{})
	close(done)
	close(done) // want "closed twice on this path"
}

// Declared but never made: close(nil) panics.
func nilClose() {
	var ch chan int
	close(ch) // want "closing a nil channel panics"
}

// The channel outlives the loop that closes it; iteration two
// double-closes.
func closeInLoop(rounds int) {
	ch := make(chan int)
	for i := 0; i < rounds; i++ {
		close(ch) // want "inside a loop it was not declared in"
	}
}

// The consumer closes the channel it drains: a producer still sending
// panics on the consumer's schedule.
func drainAndClose(in chan int) int {
	total := 0
	for v := range in {
		total += v
	}
	close(in) // want "only receives from"
	return total
}

// Nothing in the loop blocks: the default case turns the select into a
// spin loop that burns a core while polling.
func spinPoll(stop chan struct{}) int {
	n := 0
	for {
		select { // want "busy-spins a core"
		case <-stop:
			return n
		default:
			n++
		}
	}
}
