// Known-bad corpus for the guardedby checker: unlocked accesses to
// annotated fields, a lock-in-the-wrong-scope closure, and an annotation
// naming a nonexistent mutex.

package guardedby

import "sync"

type regBad struct {
	mu    sync.Mutex
	peers map[string]int // guarded by mu
}

func (r *regBad) add(name string) {
	r.peers[name]++ // want "never locks"
}

func (r *regBad) size() int {
	return len(r.peers) // want "never locks"
}

func (r *regBad) leakyWatch() {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The outer lock does not protect the closure, which runs later.
	go func() {
		delete(r.peers, "gone") // want "never locks"
	}()
}

type regTypo struct {
	mu    sync.Mutex
	count int // guarded by mux -- want "not a sync.Mutex"
}
