// Known-good corpus for the guardedby checker: lock/defer-unlock
// methods, RLock readers, a correctly locking closure, a constructor
// composite literal, and a `lint:held` helper must all stay silent.

package guardedby

import "sync"

type regGood struct {
	mu    sync.Mutex
	peers map[string]int // guarded by mu
}

func newRegGood() *regGood {
	return &regGood{peers: make(map[string]int)}
}

func (r *regGood) add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers[name]++
}

func (r *regGood) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.peers)
}

// sizeLocked reports the peer count.
//
// lint:held mu
func (r *regGood) sizeLocked() int {
	return len(r.peers)
}

func (r *regGood) watch() {
	go func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		delete(r.peers, "gone")
	}()
}

type rwGood struct {
	mu   sync.RWMutex
	vals []int // guarded by mu
}

func (g *rwGood) first() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.vals[0]
}

func (g *rwGood) push(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.vals = append(g.vals, v)
}
