// Suppression directives: `//lint:ignore <checker>[,<checker>...] <reason>`
// silences matching diagnostics on the directive's own line or on the
// line directly below it (the staticcheck convention — the comment either
// trails the offending statement or sits on its own line above it). The
// reason is mandatory: a suppression is a documented decision, and the
// CLI surfaces suppressed counts so silenced findings stay visible.

package lint

import (
	"go/token"
	"sort"
	"strings"
)

const ignorePrefix = "//lint:ignore "

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	checkers map[string]bool
	reason   string
	file     string
	line     int
}

// parseIgnore parses one comment's text, returning nil if it is not a
// well-formed ignore directive (no checker list or no reason).
func parseIgnore(text string, pos token.Position) *ignoreDirective {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
		return nil // a reason is required
	}
	d := &ignoreDirective{
		checkers: make(map[string]bool),
		reason:   strings.TrimSpace(fields[1]),
		file:     pos.Filename,
		line:     pos.Line,
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name = strings.TrimSpace(name); name != "" {
			d.checkers[name] = true
		}
	}
	if len(d.checkers) == 0 {
		return nil
	}
	return d
}

// collectIgnores scans every file of every package for directives.
func collectIgnores(pkgs []*Package) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if d := parseIgnore(c.Text, pkg.Fset.Position(c.Pos())); d != nil {
						dirs = append(dirs, d)
					}
				}
			}
		}
	}
	return dirs
}

// StaleSuppression is one //lint:ignore directive that silenced nothing
// in a run: the code it excused has moved or been fixed, and the comment
// is now rot that would mask a future regression at its new location.
type StaleSuppression struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Checkers []string `json:"checkers"`
	Reason   string   `json:"reason"`
}

// StaleSuppressions returns the directives that matched no diagnostic in
// res. Only directives naming at least one analyzer that actually ran
// are considered — a run restricted with -checkers must not condemn
// suppressions for the checkers it skipped. Results are ordered by
// position.
func StaleSuppressions(pkgs []*Package, analyzers []*Analyzer, res Result) []StaleSuppression {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	type key struct {
		file    string
		line    int
		checker string
	}
	used := make(map[key]bool)
	for _, d := range res.Suppressed {
		// A directive covers its own line and the line above the
		// diagnostic, mirroring applyIgnores.
		used[key{d.Pos.Filename, d.Pos.Line, d.Checker}] = true
		used[key{d.Pos.Filename, d.Pos.Line - 1, d.Checker}] = true
	}
	var stale []StaleSuppression
	for _, dir := range collectIgnores(pkgs) {
		anyRan, anyUsed := false, false
		for name := range dir.checkers {
			if !ran[name] {
				continue
			}
			anyRan = true
			if used[key{dir.file, dir.line, name}] {
				anyUsed = true
			}
		}
		if !anyRan || anyUsed {
			continue
		}
		names := make([]string, 0, len(dir.checkers))
		for name := range dir.checkers {
			names = append(names, name)
		}
		sort.Strings(names)
		stale = append(stale, StaleSuppression{
			File:     dir.file,
			Line:     dir.line,
			Checkers: names,
			Reason:   dir.reason,
		})
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].File != stale[j].File {
			return stale[i].File < stale[j].File
		}
		return stale[i].Line < stale[j].Line
	})
	return stale
}

// applyIgnores splits diags into kept and suppressed. A diagnostic is
// suppressed when a directive naming its checker sits on the same line
// or the line immediately above it in the same file.
func applyIgnores(pkgs []*Package, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	type key struct {
		file    string
		line    int
		checker string
	}
	covered := make(map[key]bool)
	for _, d := range collectIgnores(pkgs) {
		for name := range d.checkers {
			covered[key{d.file, d.line, name}] = true
			covered[key{d.file, d.line + 1, name}] = true
		}
	}
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Checker}] {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
