// Suppression directives: `//lint:ignore <checker>[,<checker>...] <reason>`
// silences matching diagnostics on the directive's own line or on the
// line directly below it (the staticcheck convention — the comment either
// trails the offending statement or sits on its own line above it). The
// reason is mandatory: a suppression is a documented decision, and the
// CLI surfaces suppressed counts so silenced findings stay visible.

package lint

import (
	"go/token"
	"strings"
)

const ignorePrefix = "//lint:ignore "

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	checkers map[string]bool
	reason   string
	file     string
	line     int
}

// parseIgnore parses one comment's text, returning nil if it is not a
// well-formed ignore directive (no checker list or no reason).
func parseIgnore(text string, pos token.Position) *ignoreDirective {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
		return nil // a reason is required
	}
	d := &ignoreDirective{
		checkers: make(map[string]bool),
		reason:   strings.TrimSpace(fields[1]),
		file:     pos.Filename,
		line:     pos.Line,
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name = strings.TrimSpace(name); name != "" {
			d.checkers[name] = true
		}
	}
	if len(d.checkers) == 0 {
		return nil
	}
	return d
}

// collectIgnores scans every file of every package for directives.
func collectIgnores(pkgs []*Package) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if d := parseIgnore(c.Text, pkg.Fset.Position(c.Pos())); d != nil {
						dirs = append(dirs, d)
					}
				}
			}
		}
	}
	return dirs
}

// applyIgnores splits diags into kept and suppressed. A diagnostic is
// suppressed when a directive naming its checker sits on the same line
// or the line immediately above it in the same file.
func applyIgnores(pkgs []*Package, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	type key struct {
		file    string
		line    int
		checker string
	}
	covered := make(map[key]bool)
	for _, d := range collectIgnores(pkgs) {
		for name := range d.checkers {
			covered[key{d.file, d.line, name}] = true
			covered[key{d.file, d.line + 1, name}] = true
		}
	}
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Checker}] {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
