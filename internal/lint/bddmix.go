// Checker bddmix: cross-manager BDD misuse. A bdd.Ref is an index into
// one specific bdd.Table's node array (bdd package doc: "Refs from
// different Tables must not be mixed"). Passing a Ref minted by one
// manager into a method of another silently denotes a *different* header
// set — or panics on a range check if you are lucky. The engine can only
// catch out-of-range refs at runtime; this checker catches the in-range
// ones statically.
//
// The analysis is per-function and provenance-based: a Ref expression's
// manager is the dotted chain of the Table receiver it was produced by
// (`t`, `s.T`, ...). Table-typed locals are alias-resolved (`u := s.T`
// makes `u` and `s.T` the same manager). Anything whose provenance does
// not resolve to a single chain — parameters, struct fields, merged
// branches — is left alone: the checker prefers silence to false alarms.

package lint

import (
	"go/ast"
	"go/types"
)

// bddPkgPath is the package that owns the manager and ref types.
const bddPkgPath = "veridp/internal/bdd"

// BDDMix flags bdd.Refs produced by one bdd.Table flowing into methods
// of another.
var BDDMix = &Analyzer{
	Name: "bddmix",
	Doc:  "bdd.Refs minted by one bdd.Table must not be passed to methods of another",
	Run:  runBDDMix,
}

func isBDDTable(t types.Type) bool {
	_, ok := isNamed(t, bddPkgPath, "Table")
	return ok
}

func isBDDRef(t types.Type) bool {
	_, ok := isNamed(t, bddPkgPath, "Ref")
	return ok
}

func runBDDMix(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBDDFunc(pass, fd)
		}
	}
}

// checkBDDFunc tracks Ref provenance through one function body.
func checkBDDFunc(pass *Pass, fd *ast.FuncDecl) {
	// refSource maps a Ref-typed local to the manager chain that minted
	// it; conflicting assignments evict the entry.
	refSource := make(map[types.Object]string)
	// tableAlias maps a Table-typed local to the canonical chain it
	// aliases, so `u := s.T; u.And(...)` compares equal to `s.T`.
	tableAlias := make(map[string]string)

	canonical := func(chain string) string {
		for i := 0; i < 10; i++ { // bounded: alias chains are tiny
			next, ok := tableAlias[chain]
			if !ok || next == chain {
				return chain
			}
			chain = next
		}
		return chain
	}

	// managerOf resolves the manager chain of a call's receiver, or ""
	// if the call is not a Table method or the receiver is opaque.
	managerOf := func(call *ast.CallExpr) string {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok || tv.Type == nil || !isBDDTable(tv.Type) {
			return ""
		}
		chain := exprChain(sel.X)
		if chain == "" {
			return ""
		}
		return canonical(chain)
	}

	// Pass 1: record provenance from assignments, in source order.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Table aliasing: u := <table chain>.
		if len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				lhsChain := exprChain(as.Lhs[i])
				rhsChain := exprChain(as.Rhs[i])
				tv, ok := pass.Info.Types[as.Rhs[i]]
				if ok && tv.Type != nil && isBDDTable(tv.Type) && lhsChain != "" && rhsChain != "" {
					tableAlias[lhsChain] = rhsChain
				}
			}
		}
		// Ref provenance: every Ref-typed LHS fed by a single Table
		// method call inherits that call's manager; a plain copy of a
		// tracked Ref local inherits its source's manager.
		if len(as.Rhs) == 1 {
			var mgr string
			switch rhs := as.Rhs[0].(type) {
			case *ast.CallExpr:
				mgr = managerOf(rhs)
			case *ast.Ident:
				if obj := pass.Info.Uses[rhs]; obj != nil {
					mgr = refSource[obj]
				}
			default:
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || !isBDDRef(obj.Type()) {
					continue
				}
				if mgr == "" {
					delete(refSource, obj) // opaque producer: forget
					continue
				}
				if prev, seen := refSource[obj]; seen && prev != mgr {
					delete(refSource, obj) // mixed provenance: stay silent
					continue
				}
				refSource[obj] = mgr
			}
		}
		return true
	})

	// Pass 2: at every Table method call, check Ref arguments against
	// the receiver's manager.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		mgr := managerOf(call)
		if mgr == "" {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Type == nil || !isBDDRef(tv.Type) {
				continue
			}
			src := refProvenance(pass, refSource, canonical, arg)
			if src != "" && src != mgr {
				pass.Reportf(arg.Pos(),
					"bdd.Ref minted by manager %q passed to a method of manager %q; refs must not cross bdd.Tables",
					src, mgr)
			}
		}
		return true
	})
}

// refProvenance resolves the manager chain that minted the Ref-typed
// expression e: directly for nested Table calls, via the provenance map
// for locals. Returns "" when unknown.
func refProvenance(pass *Pass, refSource map[types.Object]string, canonical func(string) string, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok || tv.Type == nil || !isBDDTable(tv.Type) {
			return ""
		}
		if chain := exprChain(sel.X); chain != "" {
			return canonical(chain)
		}
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			return refSource[obj]
		}
	case *ast.ParenExpr:
		return refProvenance(pass, refSource, canonical, e.X)
	}
	return ""
}
