// Checker chanflow: channel ownership and protocol. The monitor's legs
// talk over channels — barrier/dump waiters in the controller server,
// splice joins in the proxy, verdict fan-in in the collector — and every
// channel bug (double close, send on a closed channel, a forgotten
// buffer assumption) surfaces as a runtime panic or a silent wedge in
// exactly the component that is supposed to adjudicate faults. The
// checker enforces five clauses, whole-program where ownership crosses
// functions:
//
//  1. Exactly one closer. A channel class (same field, package var, or
//     local identity; closes through call and spawn-site arguments are
//     projected back to the caller's channel) may be closed from at most
//     one place. Two close sites in *different* functions — or any close
//     racing a go-spawned close — is a double-close waiting on a
//     schedule. (Two sites on disjoint branches of one function are left
//     to the path-sensitive clause 2, which does not cross branches.)
//  2. No send after close, path-sensitively within a function: a send
//     that follows a close of the same channel on a straight-line path
//     panics; so does a second close. A close inside a loop of a channel
//     declared outside the loop double-closes on the next iteration, and
//     a close of a `var ch chan T` that was never made panics on nil.
//     (Closing a receive-only `<-chan` is already a compile error; the
//     flow clauses cover what the compiler cannot see.)
//  3. No consumer-side close: a function that receives from a channel
//     and never sends on it does not own the close — a producer still
//     sending panics. Signal channels that are only ever closed (never
//     received in the closing function) are the legitimate pattern and
//     stay silent.
//  4. No select-default busy-spin: a for loop whose only way to pass
//     time is a select with a default case spins a core. The loop is
//     accepted when the default path — or the loop body outside the
//     select — blocks or yields (channel op, time.Sleep, net I/O,
//     runtime.Gosched, or a resolvable callee that blocks).
//  5. Buffered channels are documented decisions: every make(chan T, n)
//     with non-zero capacity carries a `// chan: buffered <n> — <reason>`
//     annotation (same line or the line above) whose <n> matches the
//     constant capacity. Buffer sizes encode protocol assumptions
//     ("one slot per splice goroutine") that the next reader cannot
//     reconstruct from the make call alone.

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ChanFlow enforces the channel ownership and protocol clauses.
var ChanFlow = &Analyzer{
	Name:   "chanflow",
	Doc:    "channel protocol: one closer per channel, no send after close/double-close/nil-close, no consumer-side close, no select-default busy-spin, buffered make(chan) annotated `// chan: buffered <n> — <reason>`",
	Global: true,
	Run:    runChanFlow,
}

func runChanFlow(pass *Pass) {
	checkBufferedMakes(pass)
	checkCloseOwnership(pass)
	for _, node := range pass.Prog.nodes {
		checkChanFunc(pass, node)
		checkBusySpin(pass, node)
	}
}

// ---- clause 5: buffered-channel annotation contract --------------------

// chanAnnPrefix is the buffered-channel annotation grammar:
// `// chan: buffered <n> — <reason>`.
const chanAnnPrefix = "chan: buffered "

// chanAnnotations maps each line a buffered-channel annotation covers
// (its own line, for trailing comments, and the line below, for comments
// above the make) to the annotation's <n> token. A malformed annotation
// (no reason after the separator) maps to "".
func chanAnnotations(fset *token.FileSet, file *ast.File) map[int]string {
	ann := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
			if !strings.HasPrefix(text, chanAnnPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, chanAnnPrefix))
			capTok, reason, ok := strings.Cut(rest, " ")
			n := ""
			if ok {
				reason = strings.TrimSpace(reason)
				for _, sep := range []string{"—", "--", "-"} {
					if after, found := strings.CutPrefix(reason, sep); found {
						if strings.TrimSpace(after) != "" {
							n = capTok
						}
						break
					}
				}
			}
			line := fset.Position(c.Pos()).Line
			ann[line] = n
			ann[line+1] = n
		}
	}
	return ann
}

func checkBufferedMakes(pass *Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ann := chanAnnotations(pass.Fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "make" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if !isChanType(typeOf(pkg, call.Args[0])) {
					return true
				}
				capVal := -1 // -1: not a constant
				if tv, ok := pkg.Info.Types[call.Args[1]]; ok && tv.Value != nil {
					if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
						capVal = int(v)
					}
				}
				if capVal == 0 {
					return true // explicitly unbuffered
				}
				line := pass.Fset.Position(call.Pos()).Line
				capTok, annotated := ann[line]
				switch {
				case !annotated:
					pass.Reportf(call.Pos(),
						"buffered channel (cap %s) without a justification — annotate `// chan: buffered %s — <reason>` or make it unbuffered",
						capText(capVal, call.Args[1]), capText(capVal, call.Args[1]))
				case capTok == "":
					pass.Reportf(call.Pos(),
						"malformed buffered-channel annotation — the grammar is `// chan: buffered <n> — <reason>` with a non-empty reason")
				case capVal >= 0 && capTok != strconv.Itoa(capVal):
					pass.Reportf(call.Pos(),
						"buffered-channel annotation says %q but the capacity is %d — keep the annotation in sync with the make", capTok, capVal)
				}
				return true
			})
		}
	}
}

// capText renders the capacity for diagnostics: the constant value when
// known, the source expression otherwise.
func capText(capVal int, e ast.Expr) string {
	if capVal >= 0 {
		return strconv.Itoa(capVal)
	}
	return types.ExprString(e)
}

// ---- clause 1: exactly one closer --------------------------------------

// closeSite is one place a channel class is closed: directly, or through
// a call/spawn whose callee (transitively) closes the argument.
type closeSite struct {
	pos     token.Pos
	node    *FuncNode // function the site is written in
	spawned bool      // the close happens on a go-spawned goroutine
	display string    // source rendering of the channel expression
}

// checkCloseOwnership collects every close site per channel class and
// reports classes with more than one owner. Within a single function the
// extra sites may be branch-disjoint (the error path closes, the happy
// path closes later), so same-function pairs are left to the
// path-sensitive clause; cross-function and spawned pairs always report.
func checkCloseOwnership(pass *Pass) {
	prog := pass.Prog
	closesParam := closesParamFixpoint(prog)
	sites := make(map[string][]closeSite)

	for _, node := range prog.nodes {
		pkg := node.Pkg
		spawnCalls := make(map[*ast.CallExpr]bool)
		walkOwnBody(node, func(n ast.Node) {
			if gs, ok := n.(*ast.GoStmt); ok {
				spawnCalls[gs.Call] = true
			}
		})
		walkOwnBody(node, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if ch, ok := closeArg(pkg, call); ok {
				if key := chanKey(pkg, ch); key != "" {
					sites[key] = append(sites[key], closeSite{
						pos: call.Pos(), node: node, display: types.ExprString(ch),
					})
				}
				return
			}
			for _, callee := range prog.resolveCall(pkg, call) {
				for _, idx := range closesParam[callee] {
					if idx >= len(call.Args) {
						continue
					}
					if key := chanKey(pkg, call.Args[idx]); key != "" {
						sites[key] = append(sites[key], closeSite{
							pos: call.Pos(), node: node, spawned: spawnCalls[call],
							display: types.ExprString(call.Args[idx]),
						})
					}
				}
			}
		})
	}

	for _, list := range sites {
		if len(list) < 2 {
			continue
		}
		sort.Slice(list, func(i, j int) bool { return list[i].pos < list[j].pos })
		crossFunction, anySpawned := false, false
		for _, s := range list {
			if s.node != list[0].node {
				crossFunction = true
			}
			if s.spawned {
				anySpawned = true
			}
		}
		if !crossFunction && !anySpawned {
			continue // same-function branch-disjoint closes: clause 2's job
		}
		for _, s := range list[1:] {
			pass.Reportf(s.pos,
				"channel %s is also closed at %s — a channel has exactly one closing owner; route shutdown through it",
				s.display, pass.Prog.shortPos(list[0].pos))
		}
	}
}

// closeArg returns the channel argument of a builtin close(ch) call.
func closeArg(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return nil, false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	return call.Args[0], true
}

// closesParamFixpoint computes, for every function, the parameter
// indices whose channel the function closes — directly or by forwarding
// the parameter to another closing function — to a fixpoint, so a
// close() three helpers deep is still projected onto the caller's
// channel expression at the original call site.
func closesParamFixpoint(prog *Program) map[*FuncNode][]int {
	paramIdx := make(map[*FuncNode]map[*types.Var]int)
	for _, node := range prog.nodes {
		idx := paramObjects(node)
		if len(idx) > 0 {
			paramIdx[node] = idx
		}
	}
	result := make(map[*FuncNode]map[int]bool)
	changed := true
	for changed {
		changed = false
		for _, node := range prog.nodes {
			params := paramIdx[node]
			if params == nil {
				continue
			}
			walkOwnBody(node, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				record := func(arg ast.Expr) {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						return
					}
					obj, ok := node.Pkg.Info.Uses[id].(*types.Var)
					if !ok {
						return
					}
					if idx, isParam := params[obj]; isParam {
						if result[node] == nil {
							result[node] = make(map[int]bool)
						}
						if !result[node][idx] {
							result[node][idx] = true
							changed = true
						}
					}
				}
				if ch, ok := closeArg(node.Pkg, call); ok {
					record(ch)
					return
				}
				for _, callee := range prog.resolveCall(node.Pkg, call) {
					for idx := range result[callee] {
						if idx < len(call.Args) {
							record(call.Args[idx])
						}
					}
				}
			})
		}
	}
	out := make(map[*FuncNode][]int, len(result))
	for node, set := range result {
		for idx := range set {
			out[node] = append(out[node], idx)
		}
		sort.Ints(out[node])
	}
	return out
}

// paramObjects maps a function's channel-typed parameter objects to
// their positional index.
func paramObjects(node *FuncNode) map[*types.Var]int {
	var ft *ast.FuncType
	if node.Decl != nil {
		ft = node.Decl.Type
	} else {
		ft = node.Lit.Type
	}
	if ft.Params == nil {
		return nil
	}
	idx := make(map[*types.Var]int)
	i := 0
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj, ok := node.Pkg.Info.Defs[name].(*types.Var); ok && isChanType(obj.Type()) {
				idx[obj] = i
			}
			i++
		}
	}
	if len(idx) == 0 {
		return nil
	}
	return idx
}

// walkOwnBody applies f to every node in the function's own body,
// without descending into nested function literals (they are separate
// FuncNodes with their own walk).
func walkOwnBody(node *FuncNode, f func(ast.Node)) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		f(n)
		walkChildren(n, walk)
	}
	body := node.body()
	f(body)
	walkChildren(body, walk)
}

// ---- clauses 2 & 3: per-function channel flow --------------------------

// chanFlowState is the path state of the sequential walk: channels
// closed so far on this path and channels still nil (declared, never
// made).
type chanFlowState struct {
	closed   map[string]token.Pos
	nilChans map[string]token.Pos
	declLoop map[string]int // loop depth at declaration
}

func (st *chanFlowState) clone() *chanFlowState {
	c := &chanFlowState{
		closed:   make(map[string]token.Pos, len(st.closed)),
		nilChans: make(map[string]token.Pos, len(st.nilChans)),
		declLoop: st.declLoop, // shared: declarations are path-independent facts
	}
	for k, v := range st.closed {
		c.closed[k] = v
	}
	for k, v := range st.nilChans {
		c.nilChans[k] = v
	}
	return c
}

// checkChanFunc runs the consumer-close scan and the path-sensitive
// close/send sequence analysis over one function body.
func checkChanFunc(pass *Pass, node *FuncNode) {
	pkg := node.Pkg

	// Flat pre-scan: which channel classes does this function send on /
	// receive from, in its own body?
	sent, received := make(map[string]bool), make(map[string]bool)
	walkOwnBody(node, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if key := chanKey(pkg, n.Chan); key != "" {
				sent[key] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key := chanKey(pkg, n.X); key != "" {
					received[key] = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(typeOf(pkg, n.X)) {
				if key := chanKey(pkg, n.X); key != "" {
					received[key] = true
				}
			}
		}
	})
	walkOwnBody(node, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if ch, chOK := closeArg(pkg, call); chOK {
			key := chanKey(pkg, ch)
			if key != "" && received[key] && !sent[key] {
				pass.Reportf(call.Pos(),
					"close of %s, which %s only receives from — the sending side owns the close; a producer still sending would panic",
					types.ExprString(ch), node.Name)
			}
		}
	})

	st := &chanFlowState{
		closed:   make(map[string]token.Pos),
		nilChans: make(map[string]token.Pos),
		declLoop: make(map[string]int),
	}
	walkChanStmts(pass, pkg, node.body().List, st, 0)
}

// walkChanStmts walks one statement sequence, threading the path state.
// Branch bodies run on clones (a close inside one branch is not assumed
// on the joined path — "may" semantics would flood disjoint error/happy
// close pairs with false positives).
func walkChanStmts(pass *Pass, pkg *Package, stmts []ast.Stmt, st *chanFlowState, loopDepth int) {
	for _, s := range stmts {
		walkChanStmt(pass, pkg, s, st, loopDepth)
	}
}

func walkChanStmt(pass *Pass, pkg *Package, s ast.Stmt, st *chanFlowState, loopDepth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		walkChanStmts(pass, pkg, s.List, st, loopDepth)
	case *ast.LabeledStmt:
		walkChanStmt(pass, pkg, s.Stmt, st, loopDepth)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if ch, chOK := closeArg(pkg, call); chOK {
				chanFlowClose(pass, pkg, call, ch, st, loopDepth, false)
				return
			}
		}
	case *ast.DeferStmt:
		if ch, ok := closeArg(pkg, s.Call); ok {
			chanFlowClose(pass, pkg, s.Call, ch, st, loopDepth, true)
		}
	case *ast.GoStmt:
		// The spawned body is its own FuncNode (literals) or declaration;
		// nothing sequential happens on this path.
	case *ast.SendStmt:
		key := chanKey(pkg, s.Chan)
		if key == "" {
			return
		}
		if closedAt, isClosed := st.closed[key]; isClosed {
			pass.Reportf(s.Arrow,
				"send on %s after it was closed at %s — this path panics",
				types.ExprString(s.Chan), pass.Prog.shortPos(closedAt))
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				if obj, ok := pkg.Info.Defs[name].(*types.Var); ok && isChanType(obj.Type()) {
					key := localKey(obj)
					st.nilChans[key] = name.Pos()
					st.declLoop[key] = loopDepth
				}
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			key := chanKey(pkg, lhs)
			if key == "" {
				continue
			}
			// A defining ident has no Types entry; resolve through its
			// object so := bindings register like = assignments.
			var lhsType types.Type
			if id, okID := ast.Unparen(lhs).(*ast.Ident); okID {
				if obj, okObj := objectOf(pkg, id); okObj {
					lhsType = obj.Type()
				}
			} else {
				lhsType = typeOf(pkg, lhs)
			}
			if !isChanType(lhsType) {
				continue
			}
			// Any assignment rebinds the variable: it is no longer the
			// closed (or nil) channel value this path saw before.
			delete(st.closed, key)
			delete(st.nilChans, key)
			if s.Tok == token.DEFINE {
				st.declLoop[key] = loopDepth
			}
		}
	case *ast.IfStmt:
		walkChanStmt(pass, pkg, s.Init, st, loopDepth)
		walkChanStmts(pass, pkg, s.Body.List, st.clone(), loopDepth)
		if s.Else != nil {
			walkChanStmt(pass, pkg, s.Else, st.clone(), loopDepth)
		}
	case *ast.ForStmt:
		walkChanStmt(pass, pkg, s.Init, st, loopDepth)
		walkChanStmts(pass, pkg, s.Body.List, st.clone(), loopDepth+1)
	case *ast.RangeStmt:
		walkChanStmts(pass, pkg, s.Body.List, st.clone(), loopDepth+1)
	case *ast.SwitchStmt:
		walkChanStmt(pass, pkg, s.Init, st, loopDepth)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkChanStmts(pass, pkg, cc.Body, st.clone(), loopDepth)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkChanStmts(pass, pkg, cc.Body, st.clone(), loopDepth)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := st.clone()
			walkChanStmt(pass, pkg, cc.Comm, branch, loopDepth)
			walkChanStmts(pass, pkg, cc.Body, branch, loopDepth)
		}
	}
}

// chanFlowClose handles one close site in the sequential walk: nil
// close, double close on a path, and close-in-loop.
func chanFlowClose(pass *Pass, pkg *Package, call *ast.CallExpr, ch ast.Expr, st *chanFlowState, loopDepth int, deferred bool) {
	key := chanKey(pkg, ch)
	if key == "" {
		return
	}
	display := types.ExprString(ch)
	if declPos, isNil := st.nilChans[key]; isNil {
		pass.Reportf(call.Pos(),
			"close of %s, which was declared at %s and never made — closing a nil channel panics",
			display, pass.Prog.shortPos(declPos))
		return
	}
	if deferred {
		// Runs at function exit; it does not close the channel for the
		// statements that follow on this path.
		return
	}
	if prev, isClosed := st.closed[key]; isClosed {
		pass.Reportf(call.Pos(),
			"%s is closed twice on this path (first at %s) — the second close panics",
			display, pass.Prog.shortPos(prev))
		return
	}
	if decl, ok := st.declLoop[key]; (ok && loopDepth > decl) || (!ok && loopDepth > 0) {
		pass.Reportf(call.Pos(),
			"close of %s inside a loop it was not declared in — the next iteration double-closes",
			display)
	}
	st.closed[key] = call.Pos()
}

// ---- clause 4: select-default busy-spin --------------------------------

// checkBusySpin reports for loops whose iterations can pass without
// blocking because a select carries a default case and nothing else in
// the loop body (or the default path itself) blocks or yields.
func checkBusySpin(pass *Pass, node *FuncNode) {
	walkOwnBody(node, func(n ast.Node) {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return
		}
		var sel *ast.SelectStmt
		var def *ast.CommClause
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			if sel != nil {
				return
			}
			switch n := n.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				return // nested frames are their own spin scope
			case *ast.SelectStmt:
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						sel, def = n, cc
						return
					}
				}
				return // a select without default blocks; no spin here
			}
			walkChildren(n, walk)
		}
		walkChildren(loop.Body, walk)
		if sel == nil {
			return
		}
		// The spin path is: loop body outside the select, plus the
		// select's default clause. If either blocks or yields, every
		// iteration pays for its spin.
		if bodyBlocksOrYields(pass, node.Pkg, loop.Body, sel) || stmtsBlockOrYield(pass, node.Pkg, def.Body) {
			return
		}
		pass.Reportf(sel.Pos(),
			"select with a default case in a loop that never blocks — this busy-spins a core; block in the default path (or drop the default case)")
	})
}

// bodyBlocksOrYields reports whether the loop body outside skip contains
// a blocking or yielding operation.
func bodyBlocksOrYields(pass *Pass, pkg *Package, body *ast.BlockStmt, skip *ast.SelectStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found {
			return
		}
		if n == ast.Node(skip) {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		// Another select with a default is itself non-blocking, and its
		// comm cases do not block either; only its default path counts.
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					if stmtsBlockOrYield(pass, pkg, cc.Body) {
						found = true
					}
					return
				}
			}
		}
		if nodeBlocksOrYields(pass, pkg, n) {
			found = true
			return
		}
		walkChildren(n, walk)
	}
	walkChildren(body, walk)
	return found
}

func stmtsBlockOrYield(pass *Pass, pkg *Package, stmts []ast.Stmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		if nodeBlocksOrYields(pass, pkg, n) {
			found = true
			return
		}
		walkChildren(n, walk)
	}
	for _, s := range stmts {
		walk(s)
	}
	return found
}

// nodeBlocksOrYields classifies one node as a blocking or yielding
// operation: channel ops, a select without default, intrinsic blockers
// (time.Sleep, net I/O, Wait), runtime.Gosched, or a call whose resolved
// callee may block.
func nodeBlocksOrYields(pass *Pass, pkg *Package, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		return isChanType(typeOf(pkg, n.X))
	case *ast.SelectStmt:
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !ok {
			break
		}
		if intrinsicBlock(pkg, sel) != "" {
			return true
		}
		if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "runtime" && obj.Name() == "Gosched" {
			return true
		}
		blocks := pass.Prog.mayBlock()
		for _, callee := range pass.Prog.resolveCall(pkg, n) {
			if blocks[callee] != nil {
				return true
			}
		}
	}
	return false
}
