// Checker guardedby: lock-annotation discipline. A struct field whose
// comment says `// guarded by <mu>` (where <mu> names a sibling field of
// type sync.Mutex, sync.RWMutex, or a pointer to either) may only be
// read or written in a function whose body acquires that mutex on the
// same base expression — `s.conns` demands an `s.mu.Lock()` (or RLock)
// in the same function scope. The check is flow-insensitive: it asks
// "does this scope ever take the lock", not "is the lock held at this
// statement", trading soundness for zero false positives on idiomatic
// lock/defer-unlock code.
//
// Scopes are the innermost enclosing FuncDecl or FuncLit; a lock taken
// inside a nested closure does not license accesses outside it, and vice
// versa. Helpers that are documented to run with the lock already held
// can declare it with a `lint:held <mu>` marker in their doc comment.

package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedBy enforces the `// guarded by <mu>` field-annotation
// convention.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mu>` may only be accessed in scopes that lock <mu>",
	Run:  runGuardedBy,
}

var (
	guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	heldRe    = regexp.MustCompile(`lint:held ([A-Za-z_][A-Za-z0-9_]*)`)
)

// guardSpec records that field fieldName of the struct type named
// structName is guarded by sibling mutex field mu.
type guardSpec struct {
	mu string
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a
// pointer to either.
func isMutexType(t types.Type) bool {
	if _, ok := isNamed(t, "sync", "Mutex"); ok {
		return true
	}
	if _, ok := isNamed(t, "sync", "RWMutex"); ok {
		return true
	}
	return false
}

// collectGuards walks the package's struct declarations and returns
// guarded-field specs keyed by (named struct type, field name).
func collectGuards(pass *Pass) map[*types.Named]map[string]guardSpec {
	guards := make(map[*types.Named]map[string]guardSpec)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			structType, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			mutexFields := make(map[string]bool)
			for i := 0; i < structType.NumFields(); i++ {
				f := structType.Field(i)
				if isMutexType(f.Type()) {
					mutexFields[f.Name()] = true
				}
			}
			for _, field := range st.Fields.List {
				mu := annotatedMutex(field)
				if mu == "" {
					continue
				}
				if !mutexFields[mu] {
					pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of %s",
						mu, named.Obj().Name())
					continue
				}
				if guards[named] == nil {
					guards[named] = make(map[string]guardSpec)
				}
				for _, name := range field.Names {
					guards[named][name.Name] = guardSpec{mu: mu}
				}
			}
			return true
		})
	}
	return guards
}

// annotatedMutex extracts the mutex name from a field's doc or trailing
// line comment, or "" if the field carries no guarded-by annotation.
func annotatedMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// scope is one function body: the set of mutex chains it locks and the
// guarded accesses it performs.
type scope struct {
	body *ast.BlockStmt
	held map[string]bool // "base.mu" chains locked in this scope
	decl *ast.FuncDecl   // nil for function literals
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, guards, &scope{body: fd.Body, decl: fd})
		}
	}
}

// checkScope verifies one function body, recursing into nested function
// literals as fresh scopes.
func checkScope(pass *Pass, guards map[*types.Named]map[string]guardSpec, sc *scope) {
	sc.held = lockedChains(sc)
	var nested []*ast.FuncLit
	ast.Inspect(sc.body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, fl)
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		named, ok := derefNamed(selection.Recv())
		if !ok {
			return true
		}
		spec, ok := guards[named][sel.Sel.Name]
		if !ok {
			return true
		}
		base := exprChain(sel.X)
		if base == "" {
			return true // provenance unknown; stay silent
		}
		if !sc.held[base+"."+spec.mu] {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %q but this scope never locks %s.%s",
				base, sel.Sel.Name, spec.mu, base, spec.mu)
		}
		return true
	})
	for _, fl := range nested {
		checkScope(pass, guards, &scope{body: fl.Body})
	}
}

// lockedChains collects every "base.mu" chain this scope acquires via a
// direct Lock/RLock call (calls inside nested literals do not count),
// plus any chains declared held through a `lint:held <mu>` doc marker on
// the enclosing method.
func lockedChains(sc *scope) map[string]bool {
	held := make(map[string]bool)
	ast.Inspect(sc.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if chain := exprChain(sel.X); chain != "" {
			held[chain] = true
		}
		return true
	})
	if sc.decl != nil && sc.decl.Doc != nil && sc.decl.Recv != nil && len(sc.decl.Recv.List) > 0 {
		if names := sc.decl.Recv.List[0].Names; len(names) > 0 {
			recv := names[0].Name
			for _, m := range heldRe.FindAllStringSubmatch(sc.decl.Doc.Text(), -1) {
				held[recv+"."+m[1]] = true
			}
		}
	}
	return held
}

// derefNamed unwraps pointers and returns the named type, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
