// Checker allocfree: static zero-allocation gate for the datagram path.
// PR 4 made report→verdict allocation-free and pinned it with
// testing.AllocsPerRun(0) — a dynamic check that only sees the inputs
// the test happens to feed it. This checker turns the contract into a
// whole-program static property: a function whose doc comment carries
// the directive
//
//	//lint:allocfree
//
// must not reach, through any statically-resolvable call chain, a
// construct that allocates. Flagged sources, in the annotated function
// or any transitive callee:
//
//   - make, new, append
//   - slice and map composite literals; address-taken composite
//     literals (&T{...} escapes); value struct literals are free
//     (*r = Report{...} writes in place)
//   - string concatenation (+ / +=) and string↔[]byte/[]rune conversions
//   - interface boxing: passing or assigning a non-pointer concrete
//     value where an interface is expected (pointers, maps, chans and
//     funcs are single words and box free)
//   - variadic calls that materialize their argument slice
//     (fmt.Sprintf("%d", n) — a spread call g(args...) passes the
//     caller's slice and is free)
//   - function literals (capture) and go statements
//
// Cold branches are exempt: an if/else body whose statement list always
// leaves the function (return, continue, break, panic — the terminates
// rule the lockset checker uses) is an error path, and error paths may
// allocate (fmt.Errorf after a truncated-datagram check; the panic
// message in a BDD bounds check). The contract covers the fall-through
// happy path — exactly what AllocsPerRun measures. Map index writes are
// also exempt by policy: the collector's per-source counters amortize
// like any map, and the paper's hot loop tolerates amortized growth.
//
// Calls that resolve to nothing — stdlib functions loaded from export
// data only (binary.BigEndian.Uint16), dynamic calls through function
// values (the collector's verdict handler) — are trusted, not flagged:
// the gate is for the code this repository owns. Diagnostics carry the
// call chain from the annotated function to the allocation site, so a
// violation three frames deep reads as "via a → b: make(...) at
// file:line".

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree enforces `//lint:allocfree` directives interprocedurally.
var AllocFree = &Analyzer{
	Name:   "allocfree",
	Doc:    "functions annotated //lint:allocfree must not reach an allocating construct (make/new/append, escaping literals, string concat, boxing, variadic slices, closures) through any resolvable call chain",
	Global: true,
	Run:    runAllocFree,
}

const allocFreeDirective = "//lint:allocfree"

// allocSite is one allocating construct found in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// afCall is one hot (non-cold-branch) resolvable call site.
type afCall struct {
	pos     token.Pos
	callees []*FuncNode
}

// afSummary is the per-function allocation summary.
type afSummary struct {
	allocs []allocSite
	calls  []afCall
}

// afChain is the result of the reachability query: the first allocation
// a function can reach, with the call chain leading to it.
type afChain struct {
	site  allocSite
	chain []string // function names from the queried function's callee down
}

type allocState struct {
	pass      *Pass
	prog      *Program
	sums      map[*FuncNode]*afSummary
	memo      map[*FuncNode]*afChain
	memoDone  map[*FuncNode]bool
	annotated map[*FuncNode]bool
}

func runAllocFree(pass *Pass) {
	st := &allocState{
		pass:      pass,
		prog:      pass.Prog,
		sums:      make(map[*FuncNode]*afSummary),
		memo:      make(map[*FuncNode]*afChain),
		memoDone:  make(map[*FuncNode]bool),
		annotated: make(map[*FuncNode]bool),
	}
	for _, n := range st.prog.nodes {
		if n.Decl != nil && hasAllocFreeDirective(n.Decl.Doc) {
			st.annotated[n] = true
		}
	}
	if len(st.annotated) == 0 {
		return
	}
	for _, n := range st.prog.nodes {
		st.sums[n] = st.summarize(n)
	}
	for _, n := range st.prog.nodes {
		if st.annotated[n] {
			st.check(n)
		}
	}
}

// hasAllocFreeDirective scans raw comment lines: CommentGroup.Text()
// strips directive comments, so the directive must be matched on the
// unprocessed text.
func hasAllocFreeDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), allocFreeDirective) {
			return true
		}
	}
	return false
}

// summarize walks one body's hot statements, recording direct
// allocations and resolvable call sites.
func (st *allocState) summarize(n *FuncNode) *afSummary {
	body := n.body()
	if body == nil {
		return &afSummary{}
	}
	s := &afScan{st: st, node: n, sum: &afSummary{}}
	s.cold = coldRegions(body)
	ast.Inspect(body, s.visit)
	return s.sum
}

// coldRegions marks the if/else blocks that always leave the function —
// the error paths the zero-alloc contract does not cover.
func coldRegions(body *ast.BlockStmt) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if terminates(ifs.Body.List) {
			cold[ifs.Body] = true
		}
		if blk, isBlk := ifs.Else.(*ast.BlockStmt); isBlk && terminates(blk.List) {
			cold[blk] = true
		}
		return true
	})
	return cold
}

// afScan is the single-body allocation walker.
type afScan struct {
	st   *allocState
	node *FuncNode
	sum  *afSummary
	cold map[ast.Node]bool
}

func (s *afScan) record(pos token.Pos, what string) {
	s.sum.allocs = append(s.sum.allocs, allocSite{pos, what})
}

func (s *afScan) visit(n ast.Node) bool {
	if n == nil {
		return true
	}
	if s.cold[n] {
		return false
	}
	pkg := s.node.Pkg
	switch n := n.(type) {
	case *ast.FuncLit:
		if s.node.Lit != n {
			s.record(n.Pos(), "function literal (closure capture)")
			return false
		}
	case *ast.GoStmt:
		s.record(n.Pos(), "go statement (new goroutine)")
		return false
	case *ast.CompositeLit:
		if t := typeOf(pkg, n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				s.record(n.Pos(), "slice literal")
			case *types.Map:
				s.record(n.Pos(), "map literal")
			}
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
				s.record(n.Pos(), "address-taken composite literal (escapes)")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringType(typeOf(pkg, n.X)) {
			s.record(n.Pos(), "string concatenation")
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(typeOf(pkg, n.Lhs[0])) {
			s.record(n.Pos(), "string concatenation")
		}
		s.checkBoxingAssign(n)
	case *ast.CallExpr:
		s.call(n)
	}
	return true
}

// call classifies one call expression: builtin, conversion, or a real
// call (variadic slice, boxing, and resolution into the call graph).
func (s *afScan) call(call *ast.CallExpr) {
	pkg := s.node.Pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				s.record(call.Pos(), "make(...)")
			case "new":
				s.record(call.Pos(), "new(...)")
			case "append":
				s.record(call.Pos(), "append (may grow past capacity)")
			}
			return
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: only string↔[]byte/[]rune copies.
		if len(call.Args) == 1 {
			dst, src := tv.Type, typeOf(pkg, call.Args[0])
			if isStringByteConversion(dst, src) {
				s.record(call.Pos(), "string conversion copies")
			}
		}
		return
	}
	sig, _ := typeOf(pkg, call.Fun).(*types.Signature)
	if sig != nil {
		s.checkVariadic(call, sig)
		s.checkBoxingCall(call, sig)
	}
	if callees := s.st.prog.resolveCall(pkg, call); len(callees) > 0 {
		s.sum.calls = append(s.sum.calls, afCall{call.Pos(), callees})
	}
}

// checkVariadic flags calls that materialize a variadic argument slice.
func (s *afScan) checkVariadic(call *ast.CallExpr, sig *types.Signature) {
	if !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	if len(call.Args) >= sig.Params().Len() {
		s.record(call.Pos(), "variadic call materializes its argument slice")
	}
}

// checkBoxingCall flags non-pointer concrete arguments passed to
// interface-typed parameters.
func (s *afScan) checkBoxingCall(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // spread passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if boxes(pt, typeOf(s.node.Pkg, arg)) {
			s.record(arg.Pos(), "interface boxing of non-pointer value")
		}
	}
}

// checkBoxingAssign flags non-pointer concrete values assigned to
// interface-typed destinations.
func (s *afScan) checkBoxingAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		if boxes(typeOf(s.node.Pkg, n.Lhs[i]), typeOf(s.node.Pkg, n.Rhs[i])) {
			s.record(n.Rhs[i].Pos(), "interface boxing of non-pointer value")
		}
	}
}

// boxes reports whether assigning a src value to a dst location
// allocates an interface box: dst is an interface, src is concrete and
// not pointer-shaped.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		b := src.Underlying().(*types.Basic)
		if b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringByteConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// reach answers "can n reach an allocation?", memoized, cycles broken by
// treating in-progress nodes as allocation-free along the back edge.
func (st *allocState) reach(n *FuncNode, visiting map[*FuncNode]bool) *afChain {
	if st.memoDone[n] {
		return st.memo[n]
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)
	sum := st.sums[n]
	var result *afChain
	if sum != nil && len(sum.allocs) > 0 {
		result = &afChain{site: sum.allocs[0]}
	} else if sum != nil {
		for _, c := range sum.calls {
			for _, callee := range c.callees {
				if sub := st.reach(callee, visiting); sub != nil {
					result = &afChain{
						site:  sub.site,
						chain: append([]string{callee.Name}, sub.chain...),
					}
					break
				}
			}
			if result != nil {
				break
			}
		}
	}
	st.memo[n] = result
	st.memoDone[n] = true
	return result
}

// check reports every violation inside one annotated function: its own
// allocation sites, and each call whose callees reach one.
func (st *allocState) check(n *FuncNode) {
	sum := st.sums[n]
	for _, a := range sum.allocs {
		st.pass.Reportf(a.pos, "%s in //lint:allocfree function %s", a.what, n.Name)
	}
	for _, c := range sum.calls {
		for _, callee := range c.callees {
			if st.annotated[callee] {
				continue // the callee is checked under its own directive
			}
			sub := st.reach(callee, make(map[*FuncNode]bool))
			if sub == nil {
				continue
			}
			via := callee.Name
			if len(sub.chain) > 0 {
				via += " → " + strings.Join(sub.chain, " → ")
			}
			st.pass.Reportf(c.pos,
				"//lint:allocfree function %s calls %s, which allocates: %s at %s",
				n.Name, via, sub.site.what, st.prog.shortPos(sub.site.pos))
			break // one representative chain per call site
		}
	}
}
