// Checker lockorder: cycles in the global mutex acquisition-order graph.
// An edge A→B means some goroutine acquires B while holding A — directly
// in one function body, or through a call chain (call under A reaching a
// Lock of B). Two goroutines traversing a cycle in opposite directions
// deadlock; the diagnostic spells out the full acquisition chain, every
// Lock site included, so the report is actionable without re-deriving
// the interprocedural path.
//
// Mutexes are tracked as classes (one node per struct field / package
// var), so distinct instances of one class collapse; same-class
// self-edges are skipped as instance-aliasing noise.

package lint

import (
	"fmt"
	"sort"
	"strings"
)

// LockOrder reports potential deadlocks as lock-order cycles.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "mutexes must be acquired in one global order; acquisition-order cycles are potential deadlocks",
	Global: true,
	Run:    runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	acq := prog.mayAcquire()

	// One representative edge per (from, to) pair, earliest nested
	// acquisition wins so reports are deterministic.
	edges := make(map[lockKey]map[lockKey]orderEdge)
	addEdge := func(e orderEdge) {
		if e.from == e.to {
			return
		}
		if edges[e.from] == nil {
			edges[e.from] = make(map[lockKey]orderEdge)
		}
		if old, ok := edges[e.from][e.to]; !ok || e.toPos < old.toPos {
			edges[e.from][e.to] = e
		}
	}
	for _, n := range prog.nodes {
		for _, e := range n.Sum.edges {
			addEdge(e)
		}
		for _, cs := range n.Sum.calls {
			if cs.spawned || len(cs.held) == 0 {
				continue
			}
			for _, callee := range cs.callees {
				for k, info := range acq[callee] {
					via := callee.Name
					if info.via != "" {
						via = callee.Name + " → " + info.via
					}
					for _, h := range cs.held {
						addEdge(orderEdge{
							from: h.key, to: k,
							fromPos: h.pos, toPos: cs.pos,
							via: via + fmt.Sprintf(" (locked at %s)", prog.shortPos(info.pos)),
						})
					}
				}
			}
		}
	}

	for _, cycle := range findCycles(edges) {
		var steps []string
		for _, e := range cycle {
			step := fmt.Sprintf("%s (held since %s) then %s at %s",
				e.from.display(), prog.shortPos(e.fromPos),
				e.to.display(), prog.shortPos(e.toPos))
			if e.via != "" {
				step += " via " + e.via
			}
			steps = append(steps, step)
		}
		pass.Reportf(cycle[0].toPos,
			"lock order cycle (potential deadlock): %s", strings.Join(steps, "; "))
	}
}

// findCycles enumerates elementary cycles in the edge graph (bounded at
// length 6 — lock chains deeper than that do not occur in practice) and
// returns each once, rotated to start at its smallest key and sorted by
// position for deterministic output.
func findCycles(edges map[lockKey]map[lockKey]orderEdge) [][]orderEdge {
	var keys []lockKey
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	seen := make(map[string]bool)
	var cycles [][]orderEdge

	const maxLen = 6
	var path []orderEdge
	var dfs func(start, cur lockKey)
	dfs = func(start, cur lockKey) {
		if len(path) >= maxLen {
			return
		}
		var nexts []lockKey
		for next := range edges[cur] {
			nexts = append(nexts, next)
		}
		sort.Slice(nexts, func(i, j int) bool { return nexts[i] < nexts[j] })
		for _, next := range nexts {
			e := edges[cur][next]
			if next == start {
				cycle := append(append([]orderEdge(nil), path...), e)
				if sig := cycleSignature(cycle); !seen[sig] {
					seen[sig] = true
					cycles = append(cycles, canonicalCycle(cycle))
				}
				continue
			}
			// Only simple cycles: no revisiting intermediate nodes, and
			// only descend to keys >= start so each cycle is found from
			// its smallest member exactly once.
			if next < start || onPath(path, next) {
				continue
			}
			path = append(path, e)
			dfs(start, next)
			path = path[:len(path)-1]
		}
	}
	for _, k := range keys {
		dfs(k, k)
	}

	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0].toPos < cycles[j][0].toPos })
	return cycles
}

func onPath(path []orderEdge, k lockKey) bool {
	for _, e := range path {
		if e.to == k {
			return true
		}
	}
	return false
}

// cycleSignature is the rotation-independent identity of a cycle.
func cycleSignature(cycle []orderEdge) string {
	keys := make([]string, len(cycle))
	for i, e := range cycle {
		keys[i] = string(e.from)
	}
	sort.Strings(keys)
	return strings.Join(keys, "→")
}

// canonicalCycle rotates the cycle so the edge with the earliest nested
// acquisition comes first; the diagnostic is anchored there.
func canonicalCycle(cycle []orderEdge) []orderEdge {
	best := 0
	for i, e := range cycle {
		if e.toPos < cycle[best].toPos {
			best = i
		}
	}
	return append(append([]orderEdge(nil), cycle[best:]...), cycle[:best]...)
}
