// Interprocedural lockset dataflow. Each function body is walked once in
// rough evaluation order, threading an ordered list of held mutexes:
// Lock/RLock pushes, Unlock/RUnlock pops, `defer mu.Unlock()` keeps the
// mutex held to the end of the body (which is what the idiom means).
// Branches run on a clone of the set and merge by union ("may hold"), so
// the early-exit `if closed { mu.Unlock(); return }` pattern does not
// poison the fallthrough path. The walk records, per function:
//
//   - acquisitions (for the global lock-order graph),
//   - nested acquisitions (direct lock-order edges),
//   - blocking operations with the lockset at that point,
//   - resolved call sites with the lockset at the call.
//
// Two fixpoints over the call graph lift this interprocedurally: the set
// of mutexes a call may transitively acquire (lockorder) and whether a
// call may transitively block (lockedblock). `go` statements cut both
// propagations — a spawned goroutine neither blocks its spawner nor
// nests its acquisitions under the spawner's locks.
//
// Mutexes are tracked as program-wide *classes* ("controller.Server.mu",
// not one instance per Server), the standard lockset abstraction; the
// analyzers never report same-class self-edges, which would be instance
// aliasing noise.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockKey identifies a mutex class program-wide.
type lockKey string

// heldLock is one held mutex with the Lock() site that acquired it.
type heldLock struct {
	key lockKey
	pos token.Pos
}

// orderEdge records "from was held when to was acquired".
type orderEdge struct {
	from, to       lockKey
	fromPos, toPos token.Pos
	via            string // "" for direct nesting, else the callee chain
}

// blockSite is one potentially blocking operation.
type blockSite struct {
	pos  token.Pos
	what string
	held []heldLock
}

// callSite is one resolved call with the caller's lockset.
type callSite struct {
	pos     token.Pos
	name    string
	callees []*FuncNode
	held    []heldLock
	spawned bool // `go` statement: callee runs on its own goroutine
}

// Summary is the per-function lock behavior.
type Summary struct {
	acquires map[lockKey]token.Pos
	edges    []orderEdge
	blocks   []blockSite
	calls    []callSite
}

// acquireInfo is a representative acquisition of a key inside a callee,
// for interprocedural lock-order diagnostics.
type acquireInfo struct {
	pos token.Pos
	via string
}

// blockInfo explains why a function may block.
type blockInfo struct {
	pos  token.Pos
	what string
	via  string
}

// lockKeyOf classifies the receiver of a Lock/Unlock call, returning ""
// when the mutex has no stable identity (map elements, call results).
func lockKeyOf(pkg *Package, owner *FuncNode, e ast.Expr) lockKey {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lockKey(obj.Pkg().Path() + "." + obj.Name())
		}
		return lockKey(fmt.Sprintf("%s#%s", owner.Name, obj.Name()))
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named, okNamed := derefNamed(sel.Recv()); okNamed && named.Obj().Pkg() != nil {
				return lockKey(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name)
			}
			return ""
		}
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return lockKey(obj.Pkg().Path() + "." + obj.Name())
		}
	}
	return ""
}

// display shortens a lockKey for diagnostics.
func (k lockKey) display() string { return shortName(string(k)) }

func heldKeys(held []heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.key.display()
	}
	return strings.Join(names, ", ")
}

// walker threads the lockset through one function body.
type walker struct {
	prog *Program
	node *FuncNode
	held []heldLock
}

// summarize walks one node's body, filling node.Sum. Function literals
// encountered inside are registered as fresh nodes (analyzed later with
// an empty entry lockset) and the walk does not descend into them except
// to record a call site when the literal is invoked or deferred in place.
func (p *Program) summarize(node *FuncNode) {
	node.Sum = &Summary{acquires: make(map[lockKey]token.Pos)}
	w := &walker{prog: p, node: node}
	w.walkStmt(node.body())
}

func (w *walker) sum() *Summary { return w.node.Sum }

func (w *walker) cloneHeld() []heldLock {
	return append([]heldLock(nil), w.held...)
}

// mergeHeld unions branch outcomes back into the walker ("may hold").
func (w *walker) mergeHeld(sets ...[]heldLock) {
	for _, set := range sets {
		for _, h := range set {
			found := false
			for _, have := range w.held {
				if have.key == h.key {
					found = true
					break
				}
			}
			if !found {
				w.held = append(w.held, h)
			}
		}
	}
}

// terminates reports whether a statement list always transfers control
// out (return, branch, panic) as its last statement.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// runBranch walks stmts on a clone of the lockset and returns the
// resulting set, or nil (excluded from the merge) when the branch always
// leaves the function/loop.
func (w *walker) runBranch(stmts []ast.Stmt) []heldLock {
	saved := w.held
	w.held = w.cloneHeld()
	for _, s := range stmts {
		w.walkStmt(s)
	}
	out := w.held
	w.held = saved
	if terminates(stmts) {
		return nil
	}
	return out
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			w.walkStmt(stmt)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
		w.block(s.Arrow, "channel send")
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.GoStmt:
		w.walkCall(s.Call, true)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the mutex held for the rest of the
		// body; any other deferred call is treated as running here.
		if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			if name := sel.Sel.Name; name == "Unlock" || name == "RUnlock" {
				if isMutexType(typeOf(w.node.Pkg, sel.X)) {
					return
				}
			}
		}
		w.walkCall(s.Call, false)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		body := w.runBranch(s.Body.List)
		var alt []heldLock
		if s.Else != nil {
			alt = w.runBranch([]ast.Stmt{s.Else})
		}
		w.mergeHeld(body, alt)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		stmts := make([]ast.Stmt, 0, len(s.Body.List)+1)
		stmts = append(stmts, s.Body.List...)
		if s.Post != nil {
			stmts = append(stmts, s.Post)
		}
		w.mergeHeld(w.runBranch(stmts))
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		if isChanType(typeOf(w.node.Pkg, s.X)) {
			w.block(s.For, "channel receive (range)")
		}
		w.mergeHeld(w.runBranch(s.Body.List))
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		var outs [][]heldLock
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			outs = append(outs, w.runBranch(cc.Body))
		}
		w.mergeHeld(outs...)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		var outs [][]heldLock
		for _, clause := range s.Body.List {
			outs = append(outs, w.runBranch(clause.(*ast.CaseClause).Body))
		}
		w.mergeHeld(outs...)
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if clause.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(s.Select, "select with no default")
		}
		// Case bodies are walked; the communications themselves are not —
		// the select-level block above already covers them, and walking
		// them too would double-report one blocked select.
		var outs [][]heldLock
		for _, clause := range s.Body.List {
			outs = append(outs, w.runBranch(clause.(*ast.CommClause).Body))
		}
		w.mergeHeld(outs...)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

func (w *walker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e, false)
	case *ast.UnaryExpr:
		w.walkExpr(e.X)
		if e.Op == token.ARROW {
			w.block(e.Pos(), "channel receive")
		}
	case *ast.FuncLit:
		w.registerLit(e)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.walkExpr(elt)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key)
		w.walkExpr(e.Value)
	}
}

// registerLit queues a function literal as its own analysis root.
func (w *walker) registerLit(fl *ast.FuncLit) *FuncNode {
	pos := w.prog.Fset.Position(fl.Pos())
	node := &FuncNode{
		Name: fmt.Sprintf("func@%s:%d", shortBase(pos.Filename), pos.Line),
		Lit:  fl,
		Pkg:  w.node.Pkg,
	}
	w.prog.nodes = append(w.prog.nodes, node)
	return node
}

func shortBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// walkCall evaluates a call: receiver/args first, then the mutex ops,
// intrinsic blockers, and resolved call edges the call implies.
func (w *walker) walkCall(call *ast.CallExpr, spawned bool) {
	fun := ast.Unparen(call.Fun)
	// Evaluate the callee expression (a receiver chain may itself
	// contain receives or calls) and the arguments.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X)
	} else if _, isLit := fun.(*ast.FuncLit); !isLit {
		w.walkExpr(fun)
	}
	for _, arg := range call.Args {
		w.walkExpr(arg)
	}

	pkg := w.node.Pkg
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// Mutex operations on sync.Mutex / sync.RWMutex receivers.
		if recvT := typeOf(pkg, sel.X); recvT != nil && isMutexType(recvT) {
			key := lockKeyOf(pkg, w.node, sel.X)
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if key == "" {
					return
				}
				for _, h := range w.held {
					if h.key != key {
						w.sum().edges = append(w.sum().edges, orderEdge{
							from: h.key, to: key, fromPos: h.pos, toPos: call.Pos(),
						})
					}
				}
				w.held = append(w.held, heldLock{key: key, pos: call.Pos()})
				if _, seen := w.sum().acquires[key]; !seen {
					w.sum().acquires[key] = call.Pos()
				}
				return
			case "Unlock", "RUnlock":
				for i := len(w.held) - 1; i >= 0; i-- {
					if w.held[i].key == key {
						w.held = append(w.held[:i], w.held[i+1:]...)
						break
					}
				}
				return
			}
		}
		// Intrinsically blocking stdlib operations.
		if what := intrinsicBlock(pkg, sel); what != "" && !spawned {
			w.block(call.Pos(), what)
			return
		}
		// sync.Cond.Wait releases the lock while parked: not a blocking
		// op under its own mutex, and not a resolvable call either.
		if sel.Sel.Name == "Wait" {
			if _, isCond := isNamed(typeOf(pkg, sel.X), "sync", "Cond"); isCond {
				return
			}
		}
	}

	// A literal invoked or deferred in place is a direct call edge.
	if fl, ok := fun.(*ast.FuncLit); ok {
		node := w.registerLit(fl)
		w.sum().calls = append(w.sum().calls, callSite{
			pos: call.Pos(), name: node.Name,
			callees: []*FuncNode{node}, held: w.cloneHeld(), spawned: spawned,
		})
		return
	}

	callees := w.prog.resolveCall(pkg, call)
	if len(callees) == 0 && !spawned {
		return
	}
	name := callDisplayName(fun, callees)
	w.sum().calls = append(w.sum().calls, callSite{
		pos: call.Pos(), name: name,
		callees: callees, held: w.cloneHeld(), spawned: spawned,
	})
}

func callDisplayName(fun ast.Expr, callees []*FuncNode) string {
	if len(callees) == 1 {
		return callees[0].Name
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

func (w *walker) block(pos token.Pos, what string) {
	w.sum().blocks = append(w.sum().blocks, blockSite{
		pos: pos, what: what, held: w.cloneHeld(),
	})
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// intrinsicBlock classifies method/function calls whose bodies we cannot
// see (stdlib) but which are known to block: time.Sleep, WaitGroup.Wait,
// network connection I/O, and the io helpers that drive it.
func intrinsicBlock(pkg *Package, sel *ast.SelectorExpr) string {
	name := sel.Sel.Name
	if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "time":
			if name == "Sleep" {
				return "time.Sleep"
			}
		case "io":
			switch name {
			case "Copy", "CopyN", "ReadAll", "ReadFull", "WriteString":
				return "io." + name
			}
		}
	}
	recvT := typeOf(pkg, sel.X)
	if recvT == nil {
		return ""
	}
	if _, ok := isNamed(recvT, "sync", "WaitGroup"); ok && name == "Wait" {
		return "sync.WaitGroup.Wait"
	}
	if isNetConnType(recvT) {
		switch name {
		case "Read", "Write", "ReadFrom", "WriteTo",
			"ReadFromUDP", "WriteToUDP", "ReadFromIP", "WriteToIP",
			"ReadMsgUDP", "WriteMsgUDP", "Accept", "AcceptTCP":
			return "net I/O (" + name + ")"
		}
	}
	return ""
}

// isNetConnType reports whether t is a net connection or listener: one
// of the concrete net.*Conn types, or any interface/named type declared
// in package net (net.Conn, net.Listener, net.PacketConn, ...).
func isNetConnType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// mayAcquire computes, per function, the mutex classes a call to it may
// transitively acquire on the caller's goroutine, with a representative
// acquisition site and callee chain for diagnostics.
func (p *Program) mayAcquire() map[*FuncNode]map[lockKey]acquireInfo {
	if p.mayAcquireMemo != nil {
		return p.mayAcquireMemo
	}
	acq := make(map[*FuncNode]map[lockKey]acquireInfo, len(p.nodes))
	for _, n := range p.nodes {
		m := make(map[lockKey]acquireInfo, len(n.Sum.acquires))
		for k, pos := range n.Sum.acquires {
			m[k] = acquireInfo{pos: pos}
		}
		acq[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			for _, cs := range n.Sum.calls {
				if cs.spawned {
					continue
				}
				for _, callee := range cs.callees {
					for k, info := range acq[callee] {
						if _, ok := acq[n][k]; ok {
							continue
						}
						via := callee.Name
						if info.via != "" {
							via = callee.Name + " → " + info.via
						}
						acq[n][k] = acquireInfo{pos: info.pos, via: via}
						changed = true
					}
				}
			}
		}
	}
	p.mayAcquireMemo = acq
	return acq
}

// mayBlock computes, per function, whether calling it may block the
// caller's goroutine, with the root cause chained for diagnostics.
func (p *Program) mayBlock() map[*FuncNode]*blockInfo {
	if p.mayBlockMemo != nil {
		return p.mayBlockMemo
	}
	blocks := make(map[*FuncNode]*blockInfo, len(p.nodes))
	for _, n := range p.nodes {
		if len(n.Sum.blocks) > 0 {
			b := n.Sum.blocks[0]
			blocks[n] = &blockInfo{pos: b.pos, what: b.what}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			if blocks[n] != nil {
				continue
			}
			for _, cs := range n.Sum.calls {
				if cs.spawned {
					continue
				}
				for _, callee := range cs.callees {
					if info := blocks[callee]; info != nil {
						via := callee.Name
						if info.via != "" {
							via = callee.Name + " → " + info.via
						}
						blocks[n] = &blockInfo{pos: info.pos, what: info.what, via: via}
						changed = true
						break
					}
				}
				if blocks[n] != nil {
					break
				}
			}
		}
	}
	p.mayBlockMemo = blocks
	return blocks
}

// shortPos renders a position as "file.go:line" for diagnostic messages
// that must stay stable across checkouts (no absolute paths).
func (p *Program) shortPos(pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortBase(position.Filename), position.Line)
}
