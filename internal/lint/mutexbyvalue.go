// Checker mutexbyvalue: no sync.Mutex / sync.RWMutex may travel by
// value. A copied mutex is an independent lock that silently stops
// guarding the state it was copied from — in a monitoring pipeline that
// bug reads as a data-plane inconsistency, the very thing VeriDP is
// supposed to detect. `go vet`'s copylocks overlaps here; this checker
// keeps the invariant enforced even when vet's scope changes, and states
// the repo rule explicitly: value receivers on lock-bearing types are
// banned outright.

package lint

import (
	"go/ast"
	"go/types"
)

// MutexByValue reports value receivers, assignments, and call arguments
// that copy a value containing a sync.Mutex or sync.RWMutex.
var MutexByValue = &Analyzer{
	Name: "mutexbyvalue",
	Doc:  "forbid copying sync.Mutex/sync.RWMutex via value receivers, assignments, or call arguments",
	Run:  runMutexByValue,
}

// containsLock reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value (pointers and interfaces break the chain).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				return true
			}
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}

func lockByValue(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false
	}
	return containsLock(t, make(map[types.Type]bool))
}

// copyLike reports whether e is an expression whose evaluation copies an
// existing value: a variable read, a field or element read, or a pointer
// dereference. Composite literals and calls construct fresh values whose
// locks have never been used, so they are tolerated.
func copyLike(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		_, isVar := info.Uses[e].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		return info.Selections[e] != nil // a field read, not a package qualifier
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copyLike(info, e.X)
	}
	return false
}

func runMutexByValue(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv == nil || len(n.Recv.List) == 0 {
					return true
				}
				recv := n.Recv.List[0]
				t := pass.Info.Types[recv.Type].Type
				if t != nil && lockByValue(t) {
					pass.Reportf(recv.Type.Pos(),
						"method %s has a value receiver of type %s, which contains a mutex; use a pointer receiver",
						n.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					tv, ok := pass.Info.Types[rhs]
					if !ok || tv.Type == nil {
						continue
					}
					if lockByValue(tv.Type) && copyLike(pass.Info, rhs) {
						pass.Reportf(rhs.Pos(),
							"assignment copies a value of type %s, which contains a mutex",
							types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					tv, ok := pass.Info.Types[arg]
					if !ok || tv.Type == nil {
						continue
					}
					if lockByValue(tv.Type) && copyLike(pass.Info, arg) {
						pass.Reportf(arg.Pos(),
							"call passes a value of type %s by value, which copies its mutex",
							types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
					}
				}
			}
			return true
		})
	}
}
