// The tag-report message (§3.3): when a sampled packet leaves the network —
// at an edge port, at the ⊥ drop port, or on TTL expiry — the switch sends
// the verification server a 4-tuple ⟨inport, outport, header, tag⟩,
// "encapsulated with plain UDP packets" (§5). This file defines the report's
// wire format; the report package owns the UDP transport.

package packet

import (
	"encoding/binary"
	"fmt"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// ReportPort is the UDP port the verification server listens on.
const ReportPort = 48879

// ReportLen is the fixed wire size of a tag report.
const ReportLen = 34

// reportMagic identifies VeriDP report datagrams.
const reportMagic = 0x5650 // "VP"

// reportVersion is bumped on incompatible format changes.
const reportVersion = 1

// Report is one tag report.
type Report struct {
	Inport  topo.PortKey // entry port of the packet
	Outport topo.PortKey // exit port; Port may be topo.DropPort
	Header  header.Header
	Tag     bloom.Tag
	MBits   uint8 // Bloom filter size the tagger used
}

// String renders the report for logs.
func (r *Report) String() string {
	return fmt.Sprintf("report{%v→%v %v tag=%v}", r.Inport, r.Outport, r.Header, r.Tag)
}

// Marshal encodes the report into its 34-byte wire form.
func (r *Report) Marshal() []byte {
	b := make([]byte, ReportLen)
	binary.BigEndian.PutUint16(b[0:2], reportMagic)
	b[2] = reportVersion
	b[3] = r.MBits
	binary.BigEndian.PutUint16(b[4:6], uint16(r.Inport.Switch))
	binary.BigEndian.PutUint16(b[6:8], uint16(r.Inport.Port))
	binary.BigEndian.PutUint16(b[8:10], uint16(r.Outport.Switch))
	binary.BigEndian.PutUint16(b[10:12], uint16(r.Outport.Port))
	binary.BigEndian.PutUint32(b[12:16], r.Header.SrcIP)
	binary.BigEndian.PutUint32(b[16:20], r.Header.DstIP)
	b[20] = r.Header.Proto
	binary.BigEndian.PutUint16(b[22:24], r.Header.SrcPort)
	binary.BigEndian.PutUint16(b[24:26], r.Header.DstPort)
	binary.BigEndian.PutUint64(b[26:34], uint64(r.Tag))
	return b
}

// UnmarshalReport decodes a wire-form report into a fresh allocation.
func UnmarshalReport(b []byte) (*Report, error) {
	r := new(Report)
	if err := UnmarshalReportInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// UnmarshalReportInto decodes a wire-form report into r, overwriting every
// field. It allocates nothing, so callers on a hot receive path can reuse
// one Report per worker (the collector's zero-alloc datagram loop). The
// error returns may allocate: they are the cold path, taken only for
// malformed datagrams.
//
//lint:allocfree
func UnmarshalReportInto(b []byte, r *Report) error {
	if len(b) < ReportLen {
		return fmt.Errorf("packet: report truncated (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != reportMagic {
		return fmt.Errorf("packet: not a VeriDP report")
	}
	if b[2] != reportVersion {
		return fmt.Errorf("packet: unsupported report version %d", b[2])
	}
	*r = Report{
		MBits: b[3],
		Inport: topo.PortKey{
			Switch: topo.SwitchID(binary.BigEndian.Uint16(b[4:6])),
			Port:   topo.PortID(binary.BigEndian.Uint16(b[6:8])),
		},
		Outport: topo.PortKey{
			Switch: topo.SwitchID(binary.BigEndian.Uint16(b[8:10])),
			Port:   topo.PortID(binary.BigEndian.Uint16(b[10:12])),
		},
		Header: header.Header{
			SrcIP:   binary.BigEndian.Uint32(b[12:16]),
			DstIP:   binary.BigEndian.Uint32(b[16:20]),
			Proto:   b[20],
			SrcPort: binary.BigEndian.Uint16(b[22:24]),
			DstPort: binary.BigEndian.Uint16(b[24:26]),
		},
		Tag: bloom.Tag(binary.BigEndian.Uint64(b[26:34])),
	}
	return nil
}
