// Package packet implements the wire formats VeriDP's data plane touches:
// Ethernet II, 802.1Q/802.1ad VLAN tags, IPv4, TCP, and UDP, plus the
// VeriDP-specific encapsulation of §5 — a marker bit in the IP TOS field, a
// 16-bit Bloom-filter tag in the first VLAN TCI, and a 14-bit entry-port
// identifier (8 bits switch, 6 bits port) in the second VLAN TCI — and the
// UDP-encapsulated tag-report message.
//
// The design follows gopacket's layer model: each layer is a struct with
// SerializeTo/Decode methods over big-endian byte slices, and a top-level
// Parse walks the layer chain. Checksums are computed on serialize and
// updated incrementally when the pipeline flips the marker bit, as a
// hardware pipeline would.
package packet

import (
	"encoding/binary"
	"fmt"

	"veridp/internal/header"
)

// EtherTypes used by the chain.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeSTag uint16 = 0x88a8 // 802.1ad service tag (outer)
	EtherTypeCTag uint16 = 0x8100 // 802.1Q customer tag (inner)
)

// Layer sizes in bytes.
const (
	EthernetLen = 14
	VLANLen     = 4 // TCI + inner EtherType
	IPv4Len     = 20
	TCPLen      = 20
	UDPLen      = 8
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the MAC colon-separated.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is the Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// SerializeTo writes the header into b (must have ≥ EthernetLen bytes) and
// returns the bytes written.
func (e *Ethernet) SerializeTo(b []byte) int {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return EthernetLen
}

// DecodeEthernet parses an Ethernet header, returning it and the payload.
func DecodeEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < EthernetLen {
		return Ethernet{}, nil, fmt.Errorf("packet: ethernet truncated (%d bytes)", len(b))
	}
	var e Ethernet
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return e, b[EthernetLen:], nil
}

// VLAN is one 802.1Q/802.1ad tag: the 16-bit TCI followed by the inner
// EtherType. VeriDP repurposes the whole TCI as an opaque 16-bit field, as
// the paper's prototype does.
type VLAN struct {
	TCI       uint16
	EtherType uint16
}

// SerializeTo writes the tag into b (≥ VLANLen bytes).
func (v *VLAN) SerializeTo(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], v.TCI)
	binary.BigEndian.PutUint16(b[2:4], v.EtherType)
	return VLANLen
}

// DecodeVLAN parses one VLAN tag.
func DecodeVLAN(b []byte) (VLAN, []byte, error) {
	if len(b) < VLANLen {
		return VLAN{}, nil, fmt.Errorf("packet: vlan truncated (%d bytes)", len(b))
	}
	return VLAN{
		TCI:       binary.BigEndian.Uint16(b[0:2]),
		EtherType: binary.BigEndian.Uint16(b[2:4]),
	}, b[VLANLen:], nil
}

// IPv4 is the 20-byte IPv4 header (no options).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length incl. header
	ID       uint16
	TTL      uint8
	Proto    uint8
	Checksum uint16 // filled by SerializeTo
	Src, Dst uint32
}

// SerializeTo writes the header into b (≥ IPv4Len bytes), computing the
// checksum.
func (ip *IPv4) SerializeTo(b []byte) int {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], 0) // flags + fragment offset
	b[8] = ip.TTL
	b[9] = ip.Proto
	binary.BigEndian.PutUint16(b[10:12], 0) // checksum placeholder
	binary.BigEndian.PutUint32(b[12:16], ip.Src)
	binary.BigEndian.PutUint32(b[16:20], ip.Dst)
	ip.Checksum = Checksum(b[:IPv4Len])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return IPv4Len
}

// DecodeIPv4 parses an IPv4 header, validating version, IHL, and checksum.
func DecodeIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4Len {
		return IPv4{}, nil, fmt.Errorf("packet: ipv4 truncated (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4{}, nil, fmt.Errorf("packet: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != IPv4Len {
		return IPv4{}, nil, fmt.Errorf("packet: IPv4 options unsupported (IHL %d)", ihl)
	}
	if Checksum(b[:IPv4Len]) != 0 {
		return IPv4{}, nil, fmt.Errorf("packet: IPv4 checksum mismatch")
	}
	ip := IPv4{
		TOS:      b[1],
		Length:   binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Proto:    b[9],
		Checksum: binary.BigEndian.Uint16(b[10:12]),
		Src:      binary.BigEndian.Uint32(b[12:16]),
		Dst:      binary.BigEndian.Uint32(b[16:20]),
	}
	return ip, b[IPv4Len:], nil
}

// TCP is a 20-byte TCP header (no options). The checksum is computed over
// the pseudo-header as usual.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// SerializeTo writes the header into b (≥ TCPLen bytes); payload and the
// pseudo-header addresses are needed for the checksum.
func (t *TCP) SerializeTo(b []byte, src, dst uint32, payload []byte) int {
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], 0) // checksum placeholder
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent pointer
	t.Checksum = transportChecksum(src, dst, header.ProtoTCP, b[:TCPLen], payload)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	return TCPLen
}

// DecodeTCP parses a TCP header.
func DecodeTCP(b []byte) (TCP, []byte, error) {
	if len(b) < TCPLen {
		return TCP{}, nil, fmt.Errorf("packet: tcp truncated (%d bytes)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPLen || off > len(b) {
		return TCP{}, nil, fmt.Errorf("packet: bad TCP data offset %d", off)
	}
	return TCP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Seq:      binary.BigEndian.Uint32(b[4:8]),
		Ack:      binary.BigEndian.Uint32(b[8:12]),
		Flags:    b[13],
		Window:   binary.BigEndian.Uint16(b[14:16]),
		Checksum: binary.BigEndian.Uint16(b[16:18]),
	}, b[off:], nil
}

// UDP is the 8-byte UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// SerializeTo writes the header into b (≥ UDPLen bytes).
func (u *UDP) SerializeTo(b []byte, src, dst uint32, payload []byte) int {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	u.Length = uint16(UDPLen + len(payload))
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], 0)
	u.Checksum = transportChecksum(src, dst, header.ProtoUDP, b[:UDPLen], payload)
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: transmitted as all-ones
	}
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return UDPLen
}

// DecodeUDP parses a UDP header.
func DecodeUDP(b []byte) (UDP, []byte, error) {
	if len(b) < UDPLen {
		return UDP{}, nil, fmt.Errorf("packet: udp truncated (%d bytes)", len(b))
	}
	u := UDP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}
	if int(u.Length) < UDPLen || int(u.Length) > UDPLen+len(b[UDPLen:]) {
		return UDP{}, nil, fmt.Errorf("packet: bad UDP length %d", u.Length)
	}
	return u, b[UDPLen:u.Length], nil
}

// Checksum computes the Internet checksum (RFC 1071) of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumUpdate16 incrementally adjusts an Internet checksum when a 16-bit
// word changes from old to new (RFC 1624, eqn. 3) — the operation the
// tagging pipeline uses when it flips the TOS marker bit without
// re-summing the header.
func ChecksumUpdate16(sum, old, new uint16) uint16 {
	c := uint32(^sum) + uint32(^old) + uint32(new)
	for c > 0xffff {
		c = c&0xffff + c>>16
	}
	return ^uint16(c)
}

// transportChecksum computes a TCP/UDP checksum over the IPv4 pseudo-header,
// the transport header (checksum field zeroed), and the payload.
func transportChecksum(src, dst uint32, proto uint8, hdr, payload []byte) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:4], src)
	binary.BigEndian.PutUint32(pseudo[4:8], dst)
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(hdr)+len(payload)))

	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i:]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo[:])
	add(hdr)
	add(payload)
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
