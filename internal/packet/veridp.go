// VeriDP's on-the-wire packet encapsulation (§5): sampled packets carry a
// marker bit in the IP TOS field, the 16-bit Bloom-filter tag in the first
// (802.1ad service) VLAN TCI, and the 14-bit entry-port identifier — 8 bits
// of switch ID, 6 bits of port ID — in the second (802.1Q customer) VLAN
// TCI. Exit switches pop both tags and clear the marker before delivering
// the packet to its destination host.

package packet

import (
	"encoding/binary"
	"fmt"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// MarkerBit is the TOS bit that flags a sampled packet.
const MarkerBit uint8 = 0x01

// Inport field widths on the wire.
const (
	inportSwitchBits = 8
	inportPortBits   = 6
	maxWireSwitch    = 1<<inportSwitchBits - 1
	maxWirePort      = 1<<inportPortBits - 1
)

// EncodeInport packs an entry port into the 14-bit wire identifier.
func EncodeInport(pk topo.PortKey) (uint16, error) {
	if pk.Switch > maxWireSwitch {
		return 0, fmt.Errorf("packet: switch ID %d exceeds the 8-bit wire field", pk.Switch)
	}
	if pk.Port > maxWirePort {
		return 0, fmt.Errorf("packet: port ID %d exceeds the 6-bit wire field", pk.Port)
	}
	return uint16(pk.Switch)<<inportPortBits | uint16(pk.Port), nil
}

// DecodeInport unpacks the 14-bit wire identifier.
func DecodeInport(v uint16) topo.PortKey {
	return topo.PortKey{
		Switch: topo.SwitchID(v >> inportPortBits & maxWireSwitch),
		Port:   topo.PortID(v & maxWirePort),
	}
}

// BuildData assembles a plain (untagged) data packet for the 5-tuple:
// Ethernet + IPv4 + TCP/UDP + payload. Protocols other than TCP/UDP carry
// the payload directly above IP. ttl seeds the IP TTL.
func BuildData(h header.Header, ttl uint8, payload []byte) []byte {
	var l4 []byte
	switch h.Proto {
	case header.ProtoTCP:
		l4 = make([]byte, TCPLen+len(payload))
		t := TCP{SrcPort: h.SrcPort, DstPort: h.DstPort, Window: 65535}
		t.SerializeTo(l4, h.SrcIP, h.DstIP, payload)
		copy(l4[TCPLen:], payload)
	case header.ProtoUDP:
		l4 = make([]byte, UDPLen+len(payload))
		u := UDP{SrcPort: h.SrcPort, DstPort: h.DstPort}
		u.SerializeTo(l4, h.SrcIP, h.DstIP, payload)
		copy(l4[UDPLen:], payload)
	default:
		l4 = payload
	}

	buf := make([]byte, EthernetLen+IPv4Len+len(l4))
	eth := Ethernet{EtherType: EtherTypeIPv4}
	eth.SerializeTo(buf)
	ip := IPv4{
		Length: uint16(IPv4Len + len(l4)),
		TTL:    ttl,
		Proto:  h.Proto,
		Src:    h.SrcIP,
		Dst:    h.DstIP,
	}
	ip.SerializeTo(buf[EthernetLen:])
	copy(buf[EthernetLen+IPv4Len:], l4)
	return buf
}

// Encapsulate inserts the two VeriDP VLAN tags into an untagged packet and
// sets the TOS marker bit (with an incremental checksum fix). Only the low
// 16 bits of the tag fit the paper's wire format; wider simulated tags must
// stay in-process.
func Encapsulate(raw []byte, tag bloom.Tag, ingress topo.PortKey) ([]byte, error) {
	if uint64(tag)>>16 != 0 {
		return nil, fmt.Errorf("packet: tag %v exceeds the 16-bit wire field", tag)
	}
	inport, err := EncodeInport(ingress)
	if err != nil {
		return nil, err
	}
	eth, rest, err := DecodeEthernet(raw)
	if err != nil {
		return nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: cannot encapsulate EtherType %#04x", eth.EtherType)
	}
	out := make([]byte, len(raw)+2*VLANLen)
	eth.EtherType = EtherTypeSTag
	eth.SerializeTo(out)
	v1 := VLAN{TCI: uint16(tag), EtherType: EtherTypeCTag}
	v1.SerializeTo(out[EthernetLen:])
	v2 := VLAN{TCI: inport, EtherType: EtherTypeIPv4}
	v2.SerializeTo(out[EthernetLen+VLANLen:])
	copy(out[EthernetLen+2*VLANLen:], rest)
	if err := setMarker(out[EthernetLen+2*VLANLen:], true); err != nil {
		return nil, err
	}
	return out, nil
}

// Decapsulate removes the VeriDP VLAN tags and clears the marker bit,
// restoring the packet a destination host should receive.
func Decapsulate(raw []byte) ([]byte, error) {
	eth, rest, err := DecodeEthernet(raw)
	if err != nil {
		return nil, err
	}
	if eth.EtherType != EtherTypeSTag {
		return nil, fmt.Errorf("packet: not VeriDP-encapsulated (EtherType %#04x)", eth.EtherType)
	}
	v1, rest, err := DecodeVLAN(rest)
	if err != nil {
		return nil, err
	}
	if v1.EtherType != EtherTypeCTag {
		return nil, fmt.Errorf("packet: missing inner VLAN tag")
	}
	v2, rest, err := DecodeVLAN(rest)
	if err != nil {
		return nil, err
	}
	if v2.EtherType != EtherTypeIPv4 {
		// VeriDP encapsulation always wraps IPv4 (the marker lives in the
		// IP TOS field); anything else is a malformed or foreign stack.
		return nil, fmt.Errorf("packet: VeriDP encapsulation wraps EtherType %#04x, not IPv4", v2.EtherType)
	}
	// Validate the wrapped IPv4 header before surgery: popping tags from a
	// corrupt packet must fail loudly, not emit new garbage.
	if _, _, err := DecodeIPv4(rest); err != nil {
		return nil, err
	}
	out := make([]byte, EthernetLen+len(rest))
	eth.EtherType = v2.EtherType
	eth.SerializeTo(out)
	copy(out[EthernetLen:], rest)
	if err := setMarker(out[EthernetLen:], false); err != nil {
		return nil, err
	}
	return out, nil
}

// UpdateTag overwrites the tag TCI of an encapsulated packet in place — the
// per-hop tagging operation, deliberately cheap (one 16-bit store).
func UpdateTag(raw []byte, tag bloom.Tag) error {
	if uint64(tag)>>16 != 0 {
		return fmt.Errorf("packet: tag %v exceeds the 16-bit wire field", tag)
	}
	if len(raw) < EthernetLen+VLANLen {
		return fmt.Errorf("packet: too short for a VLAN tag")
	}
	if binary.BigEndian.Uint16(raw[12:14]) != EtherTypeSTag {
		return fmt.Errorf("packet: not VeriDP-encapsulated")
	}
	binary.BigEndian.PutUint16(raw[EthernetLen:], uint16(tag))
	return nil
}

// setMarker sets/clears the TOS marker bit on the IPv4 header at the start
// of b, patching the checksum incrementally.
func setMarker(b []byte, on bool) error {
	if len(b) < IPv4Len {
		return fmt.Errorf("packet: ipv4 truncated for marker update")
	}
	oldWord := binary.BigEndian.Uint16(b[0:2]) // version/IHL + TOS
	tos := b[1]
	if on {
		tos |= MarkerBit
	} else {
		tos &^= MarkerBit
	}
	b[1] = tos
	newWord := binary.BigEndian.Uint16(b[0:2])
	if newWord != oldWord {
		sum := binary.BigEndian.Uint16(b[10:12])
		binary.BigEndian.PutUint16(b[10:12], ChecksumUpdate16(sum, oldWord, newWord))
	}
	return nil
}

// DecrementTTL decrements the IPv4 TTL of a (possibly encapsulated) packet
// in place with an incremental checksum fix, returning the new TTL. This is
// Algorithm 1's "p.TTL ← p.TTL − 1"; the entry switch seeds the TTL with
// the network's maximum path length.
func DecrementTTL(raw []byte) (uint8, error) {
	off, err := ipOffset(raw)
	if err != nil {
		return 0, err
	}
	b := raw[off:]
	if len(b) < IPv4Len {
		return 0, fmt.Errorf("packet: ipv4 truncated for TTL update")
	}
	if b[8] == 0 {
		return 0, fmt.Errorf("packet: TTL already zero")
	}
	oldWord := binary.BigEndian.Uint16(b[8:10]) // TTL + proto
	b[8]--
	newWord := binary.BigEndian.Uint16(b[8:10])
	sum := binary.BigEndian.Uint16(b[10:12])
	binary.BigEndian.PutUint16(b[10:12], ChecksumUpdate16(sum, oldWord, newWord))
	return b[8], nil
}

// ipOffset locates the IPv4 header through any VLAN stack.
func ipOffset(raw []byte) (int, error) {
	if len(raw) < EthernetLen {
		return 0, fmt.Errorf("packet: ethernet truncated")
	}
	off := EthernetLen
	et := binary.BigEndian.Uint16(raw[12:14])
	for et == EtherTypeSTag || et == EtherTypeCTag {
		if len(raw) < off+VLANLen {
			return 0, fmt.Errorf("packet: vlan truncated")
		}
		et = binary.BigEndian.Uint16(raw[off+2 : off+4])
		off += VLANLen
	}
	if et != EtherTypeIPv4 {
		return 0, fmt.Errorf("packet: no IPv4 header (EtherType %#04x)", et)
	}
	return off, nil
}

// Parsed is the fully-decoded view of a packet as the pipeline sees it.
type Parsed struct {
	Eth       Ethernet
	HasVeriDP bool
	Tag       bloom.Tag    // wire tag (16 bits) when HasVeriDP
	Ingress   topo.PortKey // entry port when HasVeriDP
	Sampled   bool         // TOS marker bit
	IP        IPv4
	Header    header.Header // 5-tuple summary
	Payload   []byte        // transport payload
}

// Parse decodes the full layer chain of a data packet.
func Parse(raw []byte) (*Parsed, error) {
	p := &Parsed{}
	eth, rest, err := DecodeEthernet(raw)
	if err != nil {
		return nil, err
	}
	p.Eth = eth
	et := eth.EtherType
	if et == EtherTypeSTag {
		v1, r, err := DecodeVLAN(rest)
		if err != nil {
			return nil, err
		}
		if v1.EtherType != EtherTypeCTag {
			return nil, fmt.Errorf("packet: expected double VLAN tag, got inner EtherType %#04x", v1.EtherType)
		}
		v2, r2, err := DecodeVLAN(r)
		if err != nil {
			return nil, err
		}
		p.HasVeriDP = true
		p.Tag = bloom.Tag(v1.TCI)
		p.Ingress = DecodeInport(v2.TCI)
		rest = r2
		et = v2.EtherType
	}
	if et != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported EtherType %#04x", et)
	}
	ip, rest, err := DecodeIPv4(rest)
	if err != nil {
		return nil, err
	}
	p.IP = ip
	p.Sampled = ip.TOS&MarkerBit != 0
	p.Header = header.Header{SrcIP: ip.Src, DstIP: ip.Dst, Proto: ip.Proto}
	switch ip.Proto {
	case header.ProtoTCP:
		t, payload, err := DecodeTCP(rest)
		if err != nil {
			return nil, err
		}
		p.Header.SrcPort, p.Header.DstPort = t.SrcPort, t.DstPort
		p.Payload = payload
	case header.ProtoUDP:
		u, payload, err := DecodeUDP(rest)
		if err != nil {
			return nil, err
		}
		p.Header.SrcPort, p.Header.DstPort = u.SrcPort, u.DstPort
		p.Payload = payload
	default:
		p.Payload = rest
	}
	return p, nil
}
