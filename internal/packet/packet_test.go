package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/topo"
)

func sampleHeader() header.Header {
	return header.Header{
		SrcIP:   header.MustParseIP("10.0.1.1"),
		DstIP:   header.MustParseIP("10.0.2.1"),
		Proto:   header.ProtoTCP,
		SrcPort: 40001,
		DstPort: 22,
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, EtherType: EtherTypeIPv4}
	buf := make([]byte, EthernetLen+3)
	n := e.SerializeTo(buf)
	if n != EthernetLen {
		t.Fatalf("serialized %d bytes", n)
	}
	got, rest, err := DecodeEthernet(buf)
	if err != nil || got != e || len(rest) != 3 {
		t.Fatalf("round trip: %+v, rest %d, err %v", got, len(rest), err)
	}
	if _, _, err := DecodeEthernet(buf[:10]); err == nil {
		t.Fatal("truncated ethernet accepted")
	}
	if got.Dst.String() != "01:02:03:04:05:06" {
		t.Fatalf("MAC string = %q", got.Dst.String())
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{TOS: 0x10, Length: 40, ID: 7, TTL: 64, Proto: header.ProtoTCP,
		Src: header.MustParseIP("1.2.3.4"), Dst: header.MustParseIP("5.6.7.8")}
	buf := make([]byte, IPv4Len)
	ip.SerializeTo(buf)
	got, _, err := DecodeIPv4(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != ip {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, ip)
	}
	// Corrupt a byte: checksum must catch it.
	buf[15] ^= 0xff
	if _, _, err := DecodeIPv4(buf); err == nil {
		t.Fatal("corrupted IPv4 header accepted")
	}
}

func TestTCPUDPRoundTrip(t *testing.T) {
	payload := []byte("hello transport")
	src, dst := header.MustParseIP("10.0.0.1"), header.MustParseIP("10.0.0.2")

	tc := TCP{SrcPort: 1234, DstPort: 80, Seq: 9, Ack: 11, Flags: 0x18, Window: 4096}
	tb := make([]byte, TCPLen+len(payload))
	tc.SerializeTo(tb, src, dst, payload)
	copy(tb[TCPLen:], payload)
	gt, pl, err := DecodeTCP(tb)
	if err != nil || gt != tc || !bytes.Equal(pl, payload) {
		t.Fatalf("TCP round trip: %+v err %v", gt, err)
	}

	u := UDP{SrcPort: 53, DstPort: 5353}
	ub := make([]byte, UDPLen+len(payload))
	u.SerializeTo(ub, src, dst, payload)
	copy(ub[UDPLen:], payload)
	gu, pl, err := DecodeUDP(ub)
	if err != nil || gu != u || !bytes.Equal(pl, payload) {
		t.Fatalf("UDP round trip: %+v err %v", gu, err)
	}
}

func TestChecksumUpdate16(t *testing.T) {
	// Incremental update must agree with full recomputation.
	b := make([]byte, IPv4Len)
	ip := IPv4{TOS: 0, Length: 20, TTL: 64, Proto: 6, Src: 1, Dst: 2}
	ip.SerializeTo(b)
	old := uint16(b[0])<<8 | uint16(b[1])
	b[1] |= MarkerBit
	new := uint16(b[0])<<8 | uint16(b[1])
	incr := ChecksumUpdate16(ip.Checksum, old, new)

	b[10], b[11] = 0, 0
	full := Checksum(b[:IPv4Len])
	if incr != full {
		t.Fatalf("incremental %#04x vs full %#04x", incr, full)
	}
}

// Property: ChecksumUpdate16 always agrees with recomputation for random
// headers and random word flips.
func TestQuickChecksumUpdate(t *testing.T) {
	prop := func(seed int64, wordIdx uint8, newVal uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, IPv4Len)
		rng.Read(b)
		b[0] = 0x45
		b[10], b[11] = 0, 0
		sum := Checksum(b)
		b[10], b[11] = byte(sum>>8), byte(sum)

		i := int(wordIdx) % (IPv4Len / 2) * 2
		if i == 10 {
			return true // skip the checksum field itself
		}
		old := uint16(b[i])<<8 | uint16(b[i+1])
		incr := ChecksumUpdate16(sum, old, newVal)
		b[i], b[i+1] = byte(newVal>>8), byte(newVal)
		b[10], b[11] = 0, 0
		return incr == Checksum(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndParsePlain(t *testing.T) {
	h := sampleHeader()
	raw := BuildData(h, 64, []byte("payload!"))
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header != h {
		t.Fatalf("parsed header %v, want %v", p.Header, h)
	}
	if p.HasVeriDP || p.Sampled {
		t.Fatal("plain packet claims VeriDP state")
	}
	if string(p.Payload) != "payload!" {
		t.Fatalf("payload %q", p.Payload)
	}
	if p.IP.TTL != 64 {
		t.Fatalf("TTL %d", p.IP.TTL)
	}
}

func TestBuildUDPAndOtherProto(t *testing.T) {
	h := sampleHeader()
	h.Proto = header.ProtoUDP
	p, err := Parse(BuildData(h, 32, nil))
	if err != nil || p.Header != h {
		t.Fatalf("UDP build/parse: %v err %v", p, err)
	}
	h.Proto = header.ProtoICMP
	h.SrcPort, h.DstPort = 0, 0
	p, err = Parse(BuildData(h, 32, []byte{8, 0}))
	if err != nil || p.Header != h {
		t.Fatalf("ICMP build/parse: %v err %v", p, err)
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	h := sampleHeader()
	raw := BuildData(h, 64, []byte("data"))
	ingress := topo.PortKey{Switch: 7, Port: 3}
	tag := bloom.Tag(0xbeef)

	enc, err := Encapsulate(raw, tag, ingress)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != len(raw)+2*VLANLen {
		t.Fatalf("encapsulated length %d", len(enc))
	}
	p, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasVeriDP || !p.Sampled {
		t.Fatal("encapsulated packet not recognized")
	}
	if p.Tag != tag || p.Ingress != ingress {
		t.Fatalf("tag=%v ingress=%v", p.Tag, p.Ingress)
	}
	if p.Header != h {
		t.Fatalf("header corrupted: %v", p.Header)
	}

	dec, err := Decapsulate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, raw) {
		t.Fatal("decapsulation did not restore the original packet")
	}
}

func TestEncapsulateRejectsWideTag(t *testing.T) {
	raw := BuildData(sampleHeader(), 64, nil)
	if _, err := Encapsulate(raw, bloom.Tag(0x10000), topo.PortKey{Switch: 1, Port: 1}); err == nil {
		t.Fatal("17-bit tag accepted by 16-bit wire format")
	}
	if _, err := Encapsulate(raw, 0, topo.PortKey{Switch: 300, Port: 1}); err == nil {
		t.Fatal("9-bit switch ID accepted by 8-bit wire field")
	}
	if _, err := Encapsulate(raw, 0, topo.PortKey{Switch: 1, Port: 64}); err == nil {
		t.Fatal("7-bit port ID accepted by 6-bit wire field")
	}
}

func TestUpdateTag(t *testing.T) {
	raw := BuildData(sampleHeader(), 64, nil)
	enc, _ := Encapsulate(raw, 0x1, topo.PortKey{Switch: 1, Port: 1})
	if err := UpdateTag(enc, 0xabcd); err != nil {
		t.Fatal(err)
	}
	p, _ := Parse(enc)
	if p.Tag != 0xabcd {
		t.Fatalf("tag after update = %v", p.Tag)
	}
	if err := UpdateTag(raw, 0x1); err == nil {
		t.Fatal("UpdateTag on untagged packet succeeded")
	}
	if err := UpdateTag(enc, 0x10000); err == nil {
		t.Fatal("wide tag accepted")
	}
}

func TestDecrementTTL(t *testing.T) {
	raw := BuildData(sampleHeader(), 3, nil)
	enc, _ := Encapsulate(raw, 0x1, topo.PortKey{Switch: 1, Port: 1})
	for want := uint8(2); want > 0; want-- {
		ttl, err := DecrementTTL(enc)
		if err != nil || ttl != want {
			t.Fatalf("DecrementTTL = %d, %v; want %d", ttl, err, want)
		}
		// The packet must stay parseable (checksum patched correctly).
		if _, err := Parse(enc); err != nil {
			t.Fatalf("packet corrupt after TTL decrement: %v", err)
		}
	}
	ttl, err := DecrementTTL(enc)
	if err != nil || ttl != 0 {
		t.Fatalf("final decrement: %d, %v", ttl, err)
	}
	if _, err := DecrementTTL(enc); err == nil {
		t.Fatal("TTL decremented below zero")
	}
}

func TestInportRoundTrip(t *testing.T) {
	for sw := topo.SwitchID(0); sw <= 255; sw += 17 {
		for p := topo.PortID(0); p <= 63; p += 7 {
			v, err := EncodeInport(topo.PortKey{Switch: sw, Port: p})
			if err != nil {
				t.Fatal(err)
			}
			if got := DecodeInport(v); got.Switch != sw || got.Port != p {
				t.Fatalf("inport round trip: %v", got)
			}
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := &Report{
		Inport:  topo.PortKey{Switch: 3, Port: 1},
		Outport: topo.PortKey{Switch: 9, Port: topo.DropPort},
		Header:  sampleHeader(),
		Tag:     bloom.Tag(0xdeadbeefcafe),
		MBits:   48,
	}
	b := r.Marshal()
	if len(b) != ReportLen {
		t.Fatalf("report length %d", len(b))
	}
	got, err := UnmarshalReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Fatalf("round trip: %+v vs %+v", got, r)
	}
}

func TestReportRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalReport([]byte{1, 2, 3}); err == nil {
		t.Fatal("short report accepted")
	}
	b := (&Report{}).Marshal()
	b[0] = 0
	if _, err := UnmarshalReport(b); err == nil {
		t.Fatal("bad magic accepted")
	}
	b = (&Report{}).Marshal()
	b[2] = 99
	if _, err := UnmarshalReport(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

// Property: build → encapsulate → parse preserves the 5-tuple for random
// headers.
func TestQuickEndToEndHeaderPreserved(t *testing.T) {
	prop := func(src, dst uint32, sport, dport uint16, pickUDP bool) bool {
		h := header.Header{SrcIP: src, DstIP: dst, Proto: header.ProtoTCP, SrcPort: sport, DstPort: dport}
		if pickUDP {
			h.Proto = header.ProtoUDP
		}
		raw := BuildData(h, 40, []byte("x"))
		enc, err := Encapsulate(raw, 0x7777, topo.PortKey{Switch: 5, Port: 2})
		if err != nil {
			return false
		}
		p, err := Parse(enc)
		return err == nil && p.Header == h && p.HasVeriDP
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildData(b *testing.B) {
	h := sampleHeader()
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildData(h, 64, payload)
	}
}

func BenchmarkParse(b *testing.B) {
	raw := BuildData(sampleHeader(), 64, make([]byte, 512))
	enc, _ := Encapsulate(raw, 0xbeef, topo.PortKey{Switch: 1, Port: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateTag(b *testing.B) {
	raw := BuildData(sampleHeader(), 64, make([]byte, 512))
	enc, _ := Encapsulate(raw, 0x1, topo.PortKey{Switch: 1, Port: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UpdateTag(enc, bloom.Tag(i&0xffff))
	}
}
