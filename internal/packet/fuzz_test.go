package packet

import (
	"testing"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/topo"
)

// FuzzParse hammers the layer-chain decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-serialize consistently
// enough to parse again.
func FuzzParse(f *testing.F) {
	h := header.Header{SrcIP: 0x0a000101, DstIP: 0x0a000201, Proto: header.ProtoTCP, SrcPort: 40000, DstPort: 80}
	f.Add(BuildData(h, 64, []byte("seed")))
	h.Proto = header.ProtoUDP
	f.Add(BuildData(h, 32, nil))
	if enc, err := Encapsulate(BuildData(h, 64, []byte("x")), 0xbeef, topo.PortKey{Switch: 3, Port: 2}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add(make([]byte, EthernetLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted packets rebuild into parseable packets with the same
		// 5-tuple.
		rebuilt := BuildData(p.Header, 64, nil)
		q, err := Parse(rebuilt)
		if err != nil {
			t.Fatalf("rebuild of accepted packet unparseable: %v", err)
		}
		if q.Header != p.Header {
			t.Fatalf("5-tuple drifted: %v vs %v", q.Header, p.Header)
		}
	})
}

// FuzzDecapsulate must never panic and must only succeed on packets that
// were actually VeriDP-encapsulated.
func FuzzDecapsulate(f *testing.F) {
	h := header.Header{SrcIP: 1, DstIP: 2, Proto: header.ProtoTCP}
	if enc, err := Encapsulate(BuildData(h, 64, nil), 0x1, topo.PortKey{Switch: 1, Port: 1}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, inErr := Parse(data)
		out, err := Decapsulate(data)
		if err != nil {
			return
		}
		// Tag popping validates through the IPv4 layer; deeper layers are
		// the parser's concern. So: a fully-parseable encapsulated input
		// must stay fully parseable, and any accepted output must at least
		// decode Ethernet + IPv4.
		if inErr == nil {
			if _, err := Parse(out); err != nil {
				t.Fatalf("decapsulation corrupted a valid packet: %v", err)
			}
		}
		_, rest, err := DecodeEthernet(out)
		if err != nil {
			t.Fatalf("decapsulated frame lost its Ethernet header: %v", err)
		}
		if _, _, err := DecodeIPv4(rest); err != nil {
			t.Fatalf("decapsulated frame lost its IPv4 header: %v", err)
		}
	})
}

// FuzzUnmarshalReport checks the report codec: no panics, and accepted
// reports round-trip bit-exactly.
func FuzzUnmarshalReport(f *testing.F) {
	r := &Report{
		Inport:  topo.PortKey{Switch: 1, Port: 2},
		Outport: topo.PortKey{Switch: 3, Port: topo.DropPort},
		Header:  header.Header{SrcIP: 9, DstIP: 8, Proto: 6, SrcPort: 7, DstPort: 6},
		Tag:     bloom.Tag(0xabc),
		MBits:   16,
	}
	f.Add(r.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := UnmarshalReport(data)
		if err != nil {
			return
		}
		back, err := UnmarshalReport(rep.Marshal())
		if err != nil || *back != *rep {
			t.Fatalf("report round trip broke: %+v vs %+v (%v)", back, rep, err)
		}
	})
}
