// Package report is the tag-report transport: switches emit reports as
// plain UDP datagrams (§5); the verification server collects them, parses
// them, and hands them to a verifier callback. The in-process simulation
// bypasses UDP; this package exists for the live deployment path
// (cmd/veridp-server, examples/liveproxy) and is exercised end-to-end over
// real sockets in its tests.
//
// The collector is a parallel pipeline: a configurable pool of workers
// (WithWorkers) each loops read→decode→verify on the shared UDP socket —
// the kernel load-balances datagrams across concurrent readers — so
// verification throughput scales with cores, the multi-threaded server
// §6.4 of the paper anticipates. The happy path allocates nothing per
// datagram: receive buffers come from a sync.Pool and each worker decodes
// into a single reused packet.Report.
package report

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"veridp/internal/netutil"
	"veridp/internal/packet"
)

// Sender ships tag reports to a collector over UDP. Safe for concurrent
// use: net.UDPConn writes are atomic per datagram.
type Sender struct {
	conn *net.UDPConn
}

// NewSender dials the collector at addr (host:port).
func NewSender(addr string) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("report: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn}, nil
}

// HandleReport implements dataplane.ReportSink by marshalling onto the
// wire. Send errors are dropped: reports are best-effort telemetry, exactly
// as UDP encapsulation implies.
//
// lint:deadline conn=s.conn a UDP datagram write to a dialed socket never
// blocks on the peer; arming a deadline per report would put a syscall on
// the hot path for a send that completes or drops immediately.
func (s *Sender) HandleReport(r *packet.Report) {
	s.conn.Write(r.Marshal())
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// bufPool recycles receive buffers across workers; 2 KiB comfortably holds
// the 34-byte report plus any padded or trailing junk a switch might send.
var bufPool = sync.Pool{New: func() any { return new([2048]byte) }}

// Log flood control: at most logBurst messages at once, refilled at
// logRefillPerSec. Counters are never rate-limited — only log lines are.
const (
	logBurst        = 10
	logRefillPerSec = 1
)

// logLimiter is a token bucket bounding the collector's log volume when a
// misbehaving or adversarial switch floods it with garbage datagrams.
type logLimiter struct {
	mu     sync.Mutex
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu
}

// allow consumes a token if one is available.
func (l *logLimiter) allow(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last.IsZero() {
		l.tokens = logBurst
	} else {
		l.tokens += now.Sub(l.last).Seconds() * logRefillPerSec
		if l.tokens > logBurst {
			l.tokens = logBurst
		}
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// shard holds one worker's counters, so the datagram hot path touches no
// state shared between workers. The pad keeps adjacent shards out of one
// cache line (the counters are written on every datagram).
type shard struct {
	received  atomic.Uint64
	malformed atomic.Uint64
	mu        sync.Mutex
	bySource  map[netip.AddrPort]uint64 // guarded by mu
	_         [24]byte
}

// Collector receives, parses, and dispatches report datagrams with a pool
// of worker goroutines sharing one UDP socket.
type Collector struct {
	conn    *net.UDPConn
	handler func(*packet.Report)
	logger  *log.Logger

	shards []shard // one per worker; fixed after NewCollector

	logLim     logLimiter
	suppressed atomic.Uint64 // log lines dropped by the limiter

	closeOnce sync.Once
}

// Option configures a Collector.
type Option func(*collectorOptions)

type collectorOptions struct {
	workers int
}

// WithWorkers sets the number of read/decode/verify worker goroutines the
// collector runs (default runtime.GOMAXPROCS(0)). Values below 1 are
// clamped to 1.
func WithWorkers(n int) Option {
	return func(o *collectorOptions) { o.workers = n }
}

// NewCollector listens on addr (e.g. ":48879") and dispatches each parsed
// report to handler. logger may be nil.
//
// handler is called concurrently from every worker and must be safe for
// parallel use. The *packet.Report it receives is reused by the worker:
// it is valid only until handler returns — copy the struct to retain it.
func NewCollector(addr string, handler func(*packet.Report), logger *log.Logger, opts ...Option) (*Collector, error) {
	o := collectorOptions{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		o.workers = 1
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("report: listen %q: %w", addr, err)
	}
	c := &Collector{conn: conn, handler: handler, logger: logger, shards: make([]shard, o.workers)}
	for i := range c.shards {
		c.shards[i].bySource = make(map[netip.AddrPort]uint64)
	}
	return c, nil
}

// Addr returns the bound address (useful with port 0).
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// Workers returns the size of the worker pool.
func (c *Collector) Workers() int { return len(c.shards) }

// Run starts the worker pool and blocks until ctx is cancelled or Close
// is called, draining every worker before returning; it always returns a
// non-nil error: ctx.Err() after cancellation, net.ErrClosed after Close.
func (c *Collector) Run(ctx context.Context) error {
	// Cancellation is delivered by closing the shared socket, which fails
	// every worker's parked read.
	stop := context.AfterFunc(ctx, c.Close)
	defer stop()

	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.worker(ctx, &c.shards[i])
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return errors.New("report: collector stopped") // unreachable: workers only exit on error
}

// worker is one read→decode→dispatch loop. Concurrent ReadFromUDP calls on
// the shared socket are safe — the kernel delivers each datagram to exactly
// one reader — which is what spreads ingest across the pool. The loop is
// allocation-free per datagram: buffers are pooled and the Report is reused.
// Transient read errors back off with a cap (reset on the next datagram) so
// a wedged socket cannot hot-spin a worker.
func (c *Collector) worker(ctx context.Context, s *shard) error {
	r := new(packet.Report) // one Report per worker, reused for every datagram
	var bo netutil.Backoff
	for {
		bp := bufPool.Get().(*[2048]byte)
		// The shared socket is the fan-in point for every switch in the
		// deployment: a read deadline here would tear down ingest for all
		// of them during any quiet interval, and cancellation already
		// reaches the parked read through ctx closing the socket.
		//lint:ignore deadline the shared UDP socket is governed by ctx→Close; a per-read deadline would expire healthy idle ingest
		n, from, err := c.conn.ReadFromUDPAddrPort(bp[:])
		if err != nil {
			bufPool.Put(bp)
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			c.logf("report: read: %v", err)
			if !bo.Sleep(ctx) {
				return ctx.Err()
			}
			continue
		}
		bo.Reset()
		c.dispatch(s, bp, n, from, r)
	}
}

// dispatch decodes one datagram into the worker's reused Report, counts
// it, and hands it to the verifier callback. This is the per-datagram
// tail of the hot loop; the malformed path (rate-limited logging) is the
// cold branch the zero-alloc contract exempts.
//
//lint:allocfree
func (c *Collector) dispatch(s *shard, bp *[2048]byte, n int, from netip.AddrPort, r *packet.Report) {
	err := packet.UnmarshalReportInto(bp[:n], r)
	bufPool.Put(bp)
	if err != nil {
		s.malformed.Add(1)
		c.logf("report: malformed datagram from the wire: %v", err)
		return
	}
	s.received.Add(1)
	s.mu.Lock()
	s.bySource[from]++
	s.mu.Unlock()
	c.handler(r)
}

// logf emits through the token bucket, reporting how many lines the
// limiter swallowed since the last one that got through.
func (c *Collector) logf(format string, args ...any) {
	if c.logger == nil {
		return
	}
	if !c.logLim.allow(time.Now()) {
		c.suppressed.Add(1)
		return
	}
	if n := c.suppressed.Swap(0); n > 0 {
		format += fmt.Sprintf(" (%d similar lines suppressed)", n)
	}
	c.logger.Printf(format, args...)
}

// Received returns the count of well-formed reports processed, folded
// across the worker shards.
func (c *Collector) Received() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].received.Load()
	}
	return n
}

// Malformed returns the count of undecodable datagrams, folded across the
// worker shards. Every malformed datagram is counted even when its log
// line is rate-limited away.
func (c *Collector) Malformed() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].malformed.Load()
	}
	return n
}

// SourceCounts returns a snapshot of well-formed report counts keyed by
// sender address — the per-switch breakdown a deployment uses to spot a
// switch whose reports stopped arriving.
func (c *Collector) SourceCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, v := range s.bySource {
			out[k.String()] += v
		}
		s.mu.Unlock()
	}
	return out
}

// Close stops Run.
func (c *Collector) Close() {
	c.closeOnce.Do(func() { c.conn.Close() })
}
