// Package report is the tag-report transport: switches emit reports as
// plain UDP datagrams (§5); the verification server collects them, parses
// them, and hands them to a verifier callback. The in-process simulation
// bypasses UDP; this package exists for the live deployment path
// (cmd/veridp-server, examples/liveproxy) and is exercised end-to-end over
// real sockets in its tests.
package report

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"veridp/internal/packet"
)

// Sender ships tag reports to a collector over UDP. Safe for concurrent
// use: net.UDPConn writes are atomic per datagram.
type Sender struct {
	conn *net.UDPConn
}

// NewSender dials the collector at addr (host:port).
func NewSender(addr string) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("report: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn}, nil
}

// HandleReport implements dataplane.ReportSink by marshalling onto the
// wire. Send errors are dropped: reports are best-effort telemetry, exactly
// as UDP encapsulation implies.
func (s *Sender) HandleReport(r *packet.Report) {
	s.conn.Write(r.Marshal())
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// Collector receives and parses report datagrams.
type Collector struct {
	conn    *net.UDPConn
	handler func(*packet.Report)
	logger  *log.Logger

	received  atomic.Uint64
	malformed atomic.Uint64

	mu       sync.Mutex
	bySource map[string]uint64 // guarded by mu

	closeOnce sync.Once
}

// NewCollector listens on addr (e.g. ":48879") and dispatches each parsed
// report to handler. logger may be nil.
func NewCollector(addr string, handler func(*packet.Report), logger *log.Logger) (*Collector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("report: listen %q: %w", addr, err)
	}
	return &Collector{conn: conn, handler: handler, logger: logger, bySource: make(map[string]uint64)}, nil
}

// Addr returns the bound address (useful with port 0).
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// Run reads datagrams until Close; it always returns a non-nil error
// (net.ErrClosed after Close).
func (c *Collector) Run() error {
	buf := make([]byte, 2048)
	for {
		n, from, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			if c.logger != nil {
				c.logger.Printf("report: read: %v", err)
			}
			continue
		}
		r, err := packet.UnmarshalReport(buf[:n])
		if err != nil {
			c.malformed.Add(1)
			if c.logger != nil {
				c.logger.Printf("report: malformed datagram from the wire: %v", err)
			}
			continue
		}
		c.received.Add(1)
		c.mu.Lock()
		c.bySource[from.String()]++
		c.mu.Unlock()
		c.handler(r)
	}
}

// Received returns the count of well-formed reports processed.
func (c *Collector) Received() uint64 { return c.received.Load() }

// Malformed returns the count of undecodable datagrams.
func (c *Collector) Malformed() uint64 { return c.malformed.Load() }

// SourceCounts returns a snapshot of well-formed report counts keyed by
// sender address — the per-switch breakdown a deployment uses to spot a
// switch whose reports stopped arriving.
func (c *Collector) SourceCounts() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.bySource))
	for k, v := range c.bySource {
		out[k] = v
	}
	return out
}

// Close stops Run.
func (c *Collector) Close() {
	c.closeOnce.Do(func() { c.conn.Close() })
}
