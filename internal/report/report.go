// Package report is the tag-report transport: switches emit reports as
// plain UDP datagrams (§5); the verification server collects them, parses
// them, and hands them to a verifier callback. The in-process simulation
// bypasses UDP; this package exists for the live deployment path
// (cmd/veridp-server, examples/liveproxy) and is exercised end-to-end over
// real sockets in its tests.
//
// The collector is a parallel pipeline: a configurable pool of workers
// (WithWorkers) each loops read→decode→verify — so verification throughput
// scales with cores, the multi-threaded server §6.4 of the paper
// anticipates. Each worker owns a dup'd handle onto the shared socket
// (one file description, many descriptors): the kernel delivers each
// datagram to exactly one reader, and the private descriptor is what lets
// a worker follow its blocking read with non-blocking drains (WithBatch)
// without contending on another worker's parked read. A worker wakes on
// one datagram, drains up to batch-1 more that are already queued, and
// hands the whole batch to its verifier in one call — amortizing the
// snapshot pin, cache probes, and counter updates (see core.VerifyBatch).
// The happy path allocates nothing per datagram: receive buffers come from
// a sync.Pool and each worker decodes into a preallocated batch slice.
package report

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"veridp/internal/netutil"
	"veridp/internal/packet"
)

// Sender ships tag reports to a collector over UDP. Safe for concurrent
// use: net.UDPConn writes are atomic per datagram.
type Sender struct {
	conn *net.UDPConn
}

// NewSender dials the collector at addr (host:port).
func NewSender(addr string) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("report: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn}, nil
}

// HandleReport implements dataplane.ReportSink by marshalling onto the
// wire. Send errors are dropped: reports are best-effort telemetry, exactly
// as UDP encapsulation implies.
//
// lint:deadline conn=s.conn a UDP datagram write to a dialed socket never
// blocks on the peer; arming a deadline per report would put a syscall on
// the hot path for a send that completes or drops immediately.
func (s *Sender) HandleReport(r *packet.Report) {
	s.conn.Write(r.Marshal())
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// bufPool recycles receive buffers across workers; 2 KiB comfortably holds
// the 34-byte report plus any padded or trailing junk a switch might send.
var bufPool = sync.Pool{New: func() any { return new([2048]byte) }}

// Log flood control: at most logBurst messages at once, refilled at
// logRefillPerSec. Counters are never rate-limited — only log lines are.
const (
	logBurst        = 10
	logRefillPerSec = 1
)

// logLimiter is a token bucket bounding the collector's log volume when a
// misbehaving or adversarial switch floods it with garbage datagrams.
type logLimiter struct {
	mu     sync.Mutex
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu
}

// allow consumes a token if one is available.
func (l *logLimiter) allow(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last.IsZero() {
		l.tokens = logBurst
	} else {
		l.tokens += now.Sub(l.last).Seconds() * logRefillPerSec
		if l.tokens > logBurst {
			l.tokens = logBurst
		}
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// shard holds one worker's counters, so the datagram hot path touches no
// state shared between workers. The pad keeps adjacent shards out of one
// cache line (the counters are written on every wakeup).
type shard struct {
	received  atomic.Uint64
	malformed atomic.Uint64
	mu        sync.Mutex
	bySource  map[netip.AddrPort]uint64 // guarded by mu
	_         [24]byte
}

// worker is one goroutine's private state: its dup'd socket handle, its
// counter shard, and the reusable batch buffers. Nothing here is shared
// between workers; Close is the only cross-goroutine access (conn.Close
// is safe concurrently with reads).
type worker struct {
	conn  *net.UDPConn // dup'd descriptor onto the shared socket
	shard *shard
	batch []packet.Report  // decoded reports, reused every wakeup
	froms []netip.AddrPort // per-report sender, parallel to batch
	drain drainState       // platform non-blocking receive state
}

// Collector receives, parses, and dispatches report datagrams with a pool
// of worker goroutines sharing one UDP socket.
type Collector struct {
	conn       *net.UDPConn // the bound socket (worker 0's handle)
	newHandler func() func([]packet.Report)
	logger     *log.Logger

	workers []worker // fixed after NewCollector
	shards  []shard  // one per worker; fixed after NewCollector
	batch   int

	logLim     logLimiter
	suppressed atomic.Uint64 // log lines dropped by the limiter

	closeOnce sync.Once
}

// Option configures a Collector.
type Option func(*collectorOptions)

type collectorOptions struct {
	workers int
	batch   int
}

// WithWorkers sets the number of read/decode/verify worker goroutines the
// collector runs (default runtime.GOMAXPROCS(0)). Values below 1 are
// clamped to 1.
func WithWorkers(n int) Option {
	return func(o *collectorOptions) { o.workers = n }
}

// defaultBatch is the per-wakeup datagram budget when WithBatch is not
// given: large enough to amortize the per-wakeup costs under load, small
// enough that one worker cannot hoard a burst another core could verify.
const defaultBatch = 32

// WithBatch sets the maximum datagrams a worker drains and verifies per
// wakeup (default 32). The first read blocks; the rest are non-blocking,
// so an idle collector still verifies each report the moment it arrives —
// batching only kicks in when datagrams are queued faster than workers
// wake. Values below 1 are clamped to 1 (strict one-datagram-per-wakeup).
func WithBatch(k int) Option {
	return func(o *collectorOptions) { o.batch = k }
}

// NewCollector listens on addr (e.g. ":48879") and dispatches batches of
// parsed reports to a handler. logger may be nil.
//
// newHandler is a factory: it is called once per worker, and each worker
// calls only its own handler — so the handler closure may own mutable
// single-goroutine state (a verdict cache, a scratch buffer) without any
// locking. The []packet.Report batch a handler receives is reused by the
// worker: it is valid only until the handler returns — copy any report to
// retain it.
func NewCollector(addr string, newHandler func() func([]packet.Report), logger *log.Logger, opts ...Option) (*Collector, error) {
	o := collectorOptions{workers: runtime.GOMAXPROCS(0), batch: defaultBatch}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		o.workers = 1
	}
	if o.batch < 1 {
		o.batch = 1
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("report: listen %q: %w", addr, err)
	}
	c := &Collector{
		conn:       conn,
		newHandler: newHandler,
		logger:     logger,
		workers:    make([]worker, o.workers),
		shards:     make([]shard, o.workers),
		batch:      o.batch,
	}
	for i := range c.workers {
		w := &c.workers[i]
		c.shards[i].bySource = make(map[netip.AddrPort]uint64)
		w.shard = &c.shards[i]
		w.batch = make([]packet.Report, o.batch)
		w.froms = make([]netip.AddrPort, o.batch)
		if i == 0 {
			w.conn = conn
		} else {
			w.conn, err = dupUDPConn(conn)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("report: dup socket: %w", err)
			}
		}
		if err := w.drain.init(w.conn); err != nil {
			c.Close()
			return nil, fmt.Errorf("report: drain setup: %w", err)
		}
	}
	return c, nil
}

// dupUDPConn duplicates the listening socket: a new file descriptor onto
// the same file description, so every handle shares the bound port and the
// receive queue, but each worker parks its blocking read on its own
// descriptor.
func dupUDPConn(c *net.UDPConn) (*net.UDPConn, error) {
	f, err := c.File()
	if err != nil {
		return nil, err
	}
	defer f.Close() // FilePacketConn dups again; the intermediate can go
	pc, err := net.FilePacketConn(f)
	if err != nil {
		return nil, err
	}
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("dup is %T, not *net.UDPConn", pc)
	}
	return uc, nil
}

// Addr returns the bound address (useful with port 0).
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// Workers returns the size of the worker pool.
func (c *Collector) Workers() int { return len(c.workers) }

// Batch returns the per-wakeup datagram budget.
func (c *Collector) Batch() int { return c.batch }

// Run starts the worker pool and blocks until ctx is cancelled or Close
// is called, draining every worker before returning; it always returns a
// non-nil error: ctx.Err() after cancellation, net.ErrClosed after Close.
func (c *Collector) Run(ctx context.Context) error {
	// Cancellation is delivered by closing every worker's socket handle,
	// which fails the parked reads.
	stop := context.AfterFunc(ctx, c.Close)
	defer stop()

	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i := range c.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.worker(ctx, &c.workers[i])
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return errors.New("report: collector stopped") // unreachable: workers only exit on error
}

// worker is one read→drain→decode→dispatch loop. The blocking read parks
// on the worker's private descriptor; once it delivers, fillBatch pulls
// whatever else is already queued (up to the batch budget) without
// blocking, and the whole batch goes to the worker's handler in one call.
// The loop is allocation-free per datagram: buffers are pooled and the
// batch slice is reused. Transient read errors back off with a cap (reset
// on the next datagram) so a wedged socket cannot hot-spin a worker.
func (c *Collector) worker(ctx context.Context, w *worker) error {
	handle := c.newHandler() // one handler per worker: single-writer state
	var bo netutil.Backoff
	for {
		bp := bufPool.Get().(*[2048]byte)
		// The shared socket is the fan-in point for every switch in the
		// deployment: a read deadline here would tear down ingest for all
		// of them during any quiet interval, and cancellation already
		// reaches the parked read through ctx closing the socket.
		//lint:ignore deadline the shared UDP socket is governed by ctx→Close; a per-read deadline would expire healthy idle ingest
		n, from, err := w.conn.ReadFromUDPAddrPort(bp[:])
		if err != nil {
			bufPool.Put(bp)
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			c.logf("report: read: %v", err)
			if !bo.Sleep(ctx) {
				return ctx.Err()
			}
			continue
		}
		bo.Reset()
		k := c.fillBatch(w, bp, n, from)
		bufPool.Put(bp)
		if k > 0 {
			handle(w.batch[:k])
		}
	}
}

// fillBatch decodes the just-received datagram and then drains already-
// queued ones non-blockingly until the batch is full or the queue is
// empty, decoding each into the worker's reused batch slice. One receive
// buffer serves the whole batch (each datagram is decoded before the next
// receive overwrites it), and the counters and per-source map are updated
// once per batch, not once per datagram. Returns the number of well-formed
// reports in w.batch.
//
//lint:allocfree
func (c *Collector) fillBatch(w *worker, bp *[2048]byte, n int, from netip.AddrPort) int {
	k := 0
	for {
		if c.decodeOne(w.shard, bp[:n], &w.batch[k]) {
			w.froms[k] = from
			k++
			if k == len(w.batch) {
				break
			}
		}
		var ok bool
		n, from, ok = w.drainOne(bp)
		if !ok {
			break
		}
	}
	if k > 0 {
		s := w.shard
		s.received.Add(uint64(k))
		s.mu.Lock()
		for i := 0; i < k; i++ {
			s.bySource[w.froms[i]]++
		}
		s.mu.Unlock()
	}
	return k
}

// decodeOne decodes one datagram into the batch slot, counting and
// rate-limited-logging the malformed ones — the cold branch the zero-alloc
// contract exempts.
//
//lint:allocfree
func (c *Collector) decodeOne(s *shard, b []byte, r *packet.Report) bool {
	if err := packet.UnmarshalReportInto(b, r); err != nil {
		s.malformed.Add(1)
		c.logf("report: malformed datagram from the wire: %v", err)
		return false
	}
	return true
}

// logf emits through the token bucket, reporting how many lines the
// limiter swallowed since the last one that got through.
func (c *Collector) logf(format string, args ...any) {
	if c.logger == nil {
		return
	}
	if !c.logLim.allow(time.Now()) {
		c.suppressed.Add(1)
		return
	}
	if n := c.suppressed.Swap(0); n > 0 {
		format += fmt.Sprintf(" (%d similar lines suppressed)", n)
	}
	c.logger.Printf(format, args...)
}

// Received returns the count of well-formed reports processed, folded
// across the worker shards.
func (c *Collector) Received() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].received.Load()
	}
	return n
}

// Malformed returns the count of undecodable datagrams, folded across the
// worker shards. Every malformed datagram is counted even when its log
// line is rate-limited away.
func (c *Collector) Malformed() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].malformed.Load()
	}
	return n
}

// SourceCounts returns a snapshot of well-formed report counts keyed by
// sender address — the per-switch breakdown a deployment uses to spot a
// switch whose reports stopped arriving.
func (c *Collector) SourceCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, v := range s.bySource {
			out[k.String()] += v
		}
		s.mu.Unlock()
	}
	return out
}

// Close stops Run by closing every worker's socket handle (they share one
// file description but each parks its read on its own descriptor).
func (c *Collector) Close() {
	c.closeOnce.Do(func() {
		for i := range c.workers {
			if w := &c.workers[i]; w.conn != nil && w.conn != c.conn {
				w.conn.Close()
			}
		}
		c.conn.Close()
	})
}
