// Concurrent stress: N goroutines fire tag reports at a UDP collector
// wired into a live Monitor while reader goroutines concurrently consult
// the path table and the collector's counters. The test's assertions are
// drop-tolerant (UDP may shed datagrams under load); its real teeth are
// `go test -race ./internal/report` — it only passes under the race
// detector when the locking in Collector and Monitor is correct.

package report_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"veridp"
	"veridp/internal/report"
)

// figure5Monitor builds the paper's running example with enough rules
// for the H1→H3 SSH flow to verify, and returns canonical good reports
// captured from in-process injections.
func figure5Monitor(t *testing.T) (*veridp.Monitor, []*veridp.Report) {
	t.Helper()
	net := veridp.Figure5()
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)
	s1 := net.SwitchByName("S1").ID
	s2 := net.SwitchByName("S2").ID
	s3 := net.SwitchByName("S3").ID
	rules := []struct {
		sw veridp.SwitchID
		r  veridp.Rule
	}{
		{s1, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.2.0"), Len: 24}, HasDst: true, DstPort: 22}, Action: veridp.ActOutput, OutPort: 3}},
		{s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 1}, Action: veridp.ActOutput, OutPort: 3}},
		{s2, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 3}, Action: veridp.ActOutput, OutPort: 2}},
		{s3, veridp.Rule{Priority: 20, Match: veridp.Match{DstPrefix: veridp.Prefix{IP: veridp.MustParseIP("10.0.2.0"), Len: 24}}, Action: veridp.ActOutput, OutPort: 2}},
	}
	for _, ins := range rules {
		if _, err := em.Controller.InstallRule(ins.sw, ins.r); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var captured []*veridp.Report
	mon := em.NewMonitor(veridp.MonitorConfig{
		OnVerified: func(r *veridp.Report) {
			mu.Lock()
			captured = append(captured, r)
			mu.Unlock()
		},
	})
	for port := uint16(22); port < 26; port++ {
		h := veridp.Header{SrcIP: veridp.MustParseIP("10.0.1.1"), DstIP: veridp.MustParseIP("10.0.2.1"), Proto: 6, DstPort: port}
		if port != 22 {
			h.DstPort = 22
			h.SrcPort = port
		}
		if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
			t.Fatal(err)
		}
	}
	if len(captured) == 0 {
		t.Fatal("no verified reports captured from in-process injection")
	}
	return mon, captured
}

func TestCollectorConcurrentStress(t *testing.T) {
	mon, good := figure5Monitor(t)
	verified0, violated0 := mon.Stats()

	collector, err := report.NewCollector("127.0.0.1:0", mon.BatchHandler, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	go collector.Run(context.Background())

	const (
		senders = 8
		perSend = 150
	)
	// A corrupted twin of a good report: same path, wrong tag — it must
	// take the violation/localization path through the table.
	bad := *good[0]
	bad.Tag ^= 0x2a

	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := report.NewSender(collector.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for j := 0; j < perSend; j++ {
				if (i+j)%5 == 0 {
					s.HandleReport(&bad)
				} else {
					s.HandleReport(good[j%len(good)])
				}
			}
		}(i)
	}

	// Readers: verification consults the path table (through the
	// monitor's lock) and the collector's counters while reports land.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ok, reason := mon.Verify(good[0]); !ok {
					t.Errorf("canonical report stopped verifying: %s", reason)
					return
				}
				mon.Stats()
				collector.SourceCounts()
				collector.Received()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	wg.Wait()
	// Quiesce: wait until the collector stops draining its socket.
	deadline := time.Now().Add(5 * time.Second)
	last := collector.Received()
	for {
		time.Sleep(100 * time.Millisecond)
		now := collector.Received()
		if now == last || time.Now().After(deadline) {
			break
		}
		last = now
	}
	close(stop)
	readers.Wait()

	received := collector.Received()
	if received == 0 {
		t.Fatal("no reports survived the loopback")
	}
	var bySource uint64
	counts := collector.SourceCounts()
	for _, n := range counts {
		bySource += n
	}
	if bySource != received {
		t.Fatalf("SourceCounts sums to %d, Received() = %d", bySource, received)
	}
	// Loopback UDP sheds whole bursts under load, so not every sender is
	// guaranteed a surviving datagram — but someone must be counted.
	if len(counts) == 0 {
		t.Error("SourceCounts is empty despite received reports")
	}
	verified, violated := mon.Stats()
	if handled := (verified - verified0) + (violated - violated0); handled != received {
		t.Fatalf("monitor handled %d reports, collector received %d", handled, received)
	}
	if violated == violated0 {
		t.Error("corrupted reports produced no violations")
	}
}
