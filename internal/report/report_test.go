package report

import (
	"context"
	"sync"
	"testing"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

func sampleReport(i int) *packet.Report {
	return &packet.Report{
		Inport:  topo.PortKey{Switch: 1, Port: 1},
		Outport: topo.PortKey{Switch: 3, Port: 2},
		Header: header.Header{
			SrcIP: 0x0a000101, DstIP: 0x0a000201,
			Proto: header.ProtoTCP, SrcPort: uint16(1000 + i), DstPort: 22,
		},
		Tag:   bloom.Tag(0xbeef),
		MBits: 16,
	}
}

// collectorPair spins up a collector and a sender dialed at it.
func collectorPair(t *testing.T, handler func(*packet.Report)) (*Collector, *Sender) {
	t.Helper()
	c, err := NewCollector("127.0.0.1:0", handler, nil)
	if err != nil {
		t.Fatal(err)
	}
	go c.Run(context.Background())
	s, err := NewSender(c.Addr().String())
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	return c, s
}

func TestSenderToCollector(t *testing.T) {
	var mu sync.Mutex
	var got []packet.Report
	c, s := collectorPair(t, func(r *packet.Report) {
		mu.Lock()
		got = append(got, *r) // the pointee is reused after the handler returns
		mu.Unlock()
	})
	defer c.Close()
	defer s.Close()

	const n = 20
	for i := 0; i < n; i++ {
		s.HandleReport(sampleReport(i))
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		cnt := len(got)
		mu.Unlock()
		if cnt == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d reports", cnt, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[uint16]bool{}
	for i := range got {
		r := &got[i]
		if r.Tag != 0xbeef || r.Outport.Port != 2 {
			t.Fatalf("corrupted report %v", r)
		}
		seen[r.Header.SrcPort] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct flows %d, want %d", len(seen), n)
	}
	if c.Received() != n {
		t.Fatalf("Received() = %d", c.Received())
	}
}

func TestCollectorIgnoresGarbage(t *testing.T) {
	done := make(chan struct{}, 1)
	c, s := collectorPair(t, func(*packet.Report) { done <- struct{}{} })
	defer c.Close()
	defer s.Close()

	// Raw garbage straight at the socket.
	s.conn.Write([]byte("not a report"))
	// Then a valid report; the collector must still be alive.
	s.HandleReport(sampleReport(0))
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("collector died on garbage")
	}
	if c.Malformed() == 0 {
		t.Fatal("malformed counter not incremented")
	}
}

func TestCollectorCloseStopsRun(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", func(*packet.Report) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Run(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Run returned nil after Close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Run did not stop after Close")
	}
	c.Close() // idempotent
}

func TestSenderBadAddress(t *testing.T) {
	if _, err := NewSender("this is not an address"); err == nil {
		t.Fatal("garbage address accepted")
	}
	if _, err := NewCollector("this is not an address", nil, nil); err == nil {
		t.Fatal("garbage address accepted")
	}
}
