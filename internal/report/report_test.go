package report

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"veridp/internal/bloom"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

func sampleReport(i int) *packet.Report {
	return &packet.Report{
		Inport:  topo.PortKey{Switch: 1, Port: 1},
		Outport: topo.PortKey{Switch: 3, Port: 2},
		Header: header.Header{
			SrcIP: 0x0a000101, DstIP: 0x0a000201,
			Proto: header.ProtoTCP, SrcPort: uint16(1000 + i), DstPort: 22,
		},
		Tag:   bloom.Tag(0xbeef),
		MBits: 16,
	}
}

// perReport adapts a per-report callback to the collector's batch-handler
// factory, for tests that only care about individual reports.
func perReport(handler func(*packet.Report)) func() func([]packet.Report) {
	return func() func([]packet.Report) {
		return func(batch []packet.Report) {
			for i := range batch {
				handler(&batch[i])
			}
		}
	}
}

// collectorPair spins up a collector and a sender dialed at it.
func collectorPair(t *testing.T, handler func(*packet.Report)) (*Collector, *Sender) {
	t.Helper()
	c, err := NewCollector("127.0.0.1:0", perReport(handler), nil)
	if err != nil {
		t.Fatal(err)
	}
	go c.Run(context.Background())
	s, err := NewSender(c.Addr().String())
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	return c, s
}

func TestSenderToCollector(t *testing.T) {
	var mu sync.Mutex
	var got []packet.Report
	c, s := collectorPair(t, func(r *packet.Report) {
		mu.Lock()
		got = append(got, *r) // the pointee is reused after the handler returns
		mu.Unlock()
	})
	defer c.Close()
	defer s.Close()

	const n = 20
	for i := 0; i < n; i++ {
		s.HandleReport(sampleReport(i))
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		cnt := len(got)
		mu.Unlock()
		if cnt == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d reports", cnt, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[uint16]bool{}
	for i := range got {
		r := &got[i]
		if r.Tag != 0xbeef || r.Outport.Port != 2 {
			t.Fatalf("corrupted report %v", r)
		}
		seen[r.Header.SrcPort] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct flows %d, want %d", len(seen), n)
	}
	if c.Received() != n {
		t.Fatalf("Received() = %d", c.Received())
	}
}

func TestCollectorIgnoresGarbage(t *testing.T) {
	done := make(chan struct{}, 1)
	c, s := collectorPair(t, func(*packet.Report) { done <- struct{}{} })
	defer c.Close()
	defer s.Close()

	// Raw garbage straight at the socket.
	s.conn.Write([]byte("not a report"))
	// Then a valid report; the collector must still be alive.
	s.HandleReport(sampleReport(0))
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("collector died on garbage")
	}
	if c.Malformed() == 0 {
		t.Fatal("malformed counter not incremented")
	}
}

// TestCollectorBatchesQueuedDatagrams queues a burst in the socket buffer
// before the (single) worker starts, so the first wakeup must drain a
// multi-datagram batch on platforms with the non-blocking drain path.
func TestCollectorBatchesQueuedDatagrams(t *testing.T) {
	const n = 16
	var mu sync.Mutex
	var batches []int
	total := 0
	c, err := NewCollector("127.0.0.1:0", func() func([]packet.Report) {
		return func(batch []packet.Report) {
			mu.Lock()
			batches = append(batches, len(batch))
			total += len(batch)
			mu.Unlock()
		}
	}, nil, WithWorkers(1), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewSender(c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		s.HandleReport(sampleReport(i))
	}
	time.Sleep(50 * time.Millisecond) // let the datagrams land in the queue
	go c.Run(context.Background())

	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		got := total
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d reports", got, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	max := 0
	for _, b := range batches {
		if b > 8 {
			t.Fatalf("batch of %d exceeds WithBatch(8)", b)
		}
		if b > max {
			max = b
		}
	}
	if runtime.GOOS == "linux" && max < 2 {
		t.Errorf("every batch had 1 report; non-blocking drain never coalesced (batch sizes %v)", batches)
	}
}

func TestCollectorCloseStopsRun(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", perReport(func(*packet.Report) {}), nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Run(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Run returned nil after Close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Run did not stop after Close")
	}
	c.Close() // idempotent
}

func TestSenderBadAddress(t *testing.T) {
	if _, err := NewSender("this is not an address"); err == nil {
		t.Fatal("garbage address accepted")
	}
	if _, err := NewCollector("this is not an address", nil, nil); err == nil {
		t.Fatal("garbage address accepted")
	}
}
