// Non-blocking batch drain, Linux fast path. Go's netpoller offers no
// non-blocking read on a *net.UDPConn — an armed deadline is checked
// before the receive is even attempted, and a zero deadline parks — so
// draining an already-queued burst without a park per datagram needs a raw
// recvfrom with MSG_DONTWAIT. The RawConn keeps the fd refcounted against
// a concurrent Close; the closure is built once per worker so the hot path
// allocates nothing.

//go:build linux

package report

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// drainState holds one worker's raw-receive plumbing. buf/n/errno/rsa are
// the closure's in/out parameters, reused across calls: creating the
// closure per call would heap-allocate its captures.
type drainState struct {
	raw   syscall.RawConn
	buf   []byte // set before each Control call, cleared after
	n     int
	errno syscall.Errno
	rsa   syscall.RawSockaddrAny
	fn    func(fd uintptr)
}

// init captures the worker conn's RawConn and builds the receive closure.
func (d *drainState) init(conn *net.UDPConn) error {
	raw, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	d.raw = raw
	d.fn = func(fd uintptr) {
		rsaLen := uint32(unsafe.Sizeof(d.rsa))
		r1, _, e := syscall.Syscall6(syscall.SYS_RECVFROM,
			fd,
			uintptr(unsafe.Pointer(&d.buf[0])),
			uintptr(len(d.buf)),
			syscall.MSG_DONTWAIT,
			uintptr(unsafe.Pointer(&d.rsa)),
			uintptr(unsafe.Pointer(&rsaLen)))
		d.n, d.errno = int(r1), e
	}
	return nil
}

// drainOne attempts one non-blocking receive into bp. ok=false means the
// queue is empty (EAGAIN), the socket is closing, or the sender address
// was unparseable — in every case the caller just ends the batch and
// returns to its blocking read, which reports any real error.
//
//lint:allocfree
func (w *worker) drainOne(bp *[2048]byte) (int, netip.AddrPort, bool) {
	d := &w.drain
	d.buf = bp[:]
	err := d.raw.Control(d.fn)
	d.buf = nil
	if err != nil || d.errno != 0 || d.n < 0 {
		return 0, netip.AddrPort{}, false
	}
	from, ok := sockaddrToAddrPort(&d.rsa)
	if !ok {
		return 0, netip.AddrPort{}, false
	}
	return d.n, from, true
}

// sockaddrToAddrPort converts a raw kernel sockaddr to netip form without
// allocating (the net package's Sockaddr path builds interface values).
//
//lint:allocfree
func sockaddrToAddrPort(rsa *syscall.RawSockaddrAny) (netip.AddrPort, bool) {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port)) // sin_port is big-endian in memory
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1])), true
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), uint16(p[0])<<8|uint16(p[1])), true
	}
	return netip.AddrPort{}, false
}
