// End-to-end collector throughput: marshalled reports over real loopback
// UDP, through the reader/decoder worker pool, into a counting handler.
// UDP may shed datagrams under load, so the sender applies light
// backpressure and the benchmark reports the rate actually verified as a
// custom reports/sec metric rather than assuming lossless delivery.

package report

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"veridp/internal/packet"
)

func BenchmarkCollectorThroughput(b *testing.B) {
	benchCollector(b, WithWorkers(runtime.GOMAXPROCS(0)), WithBatch(1))
}

// BenchmarkCollectorThroughputBatched is the same pipeline with the
// per-wakeup drain enabled: the difference against the plain benchmark is
// what batching buys on a loaded socket.
func BenchmarkCollectorThroughputBatched(b *testing.B) {
	benchCollector(b, WithWorkers(runtime.GOMAXPROCS(0)), WithBatch(defaultBatch))
}

func benchCollector(b *testing.B, opts ...Option) {
	var handled atomic.Uint64
	c, err := NewCollector("127.0.0.1:0", func() func([]packet.Report) {
		return func(batch []packet.Report) { handled.Add(uint64(len(batch))) }
	}, nil, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	go c.Run(context.Background())

	s, err := NewSender(c.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	raw := sampleReport(0).Marshal()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	want := uint64(b.N)
	sent, limit := uint64(0), uint64(b.N)*4
	for handled.Load() < want && sent < limit {
		if sent > handled.Load()+512 {
			runtime.Gosched() // don't outrun the socket buffer
			continue
		}
		s.conn.Write(raw)
		sent++
	}
	deadline := time.Now().Add(2 * time.Second)
	for handled.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	n := handled.Load()
	if n == 0 {
		b.Fatal("no reports made it through the collector")
	}
	b.ReportMetric(float64(n)/elapsed.Seconds(), "reports/sec")
	b.ReportMetric(float64(sent-n)/float64(sent)*100, "%dropped")
}
