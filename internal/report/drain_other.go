// Non-blocking drain fallback: platforms without the raw MSG_DONTWAIT
// path report an always-empty queue, so every batch degenerates to the
// one datagram the blocking read delivered. Correctness is unchanged —
// batching is purely an amortization.

//go:build !linux

package report

import (
	"net"
	"net/netip"
)

// drainState has no platform plumbing in the fallback.
type drainState struct{}

// init is a no-op in the fallback.
func (d *drainState) init(conn *net.UDPConn) error { return nil }

// drainOne always reports an empty queue.
//
//lint:allocfree
func (w *worker) drainOne(bp *[2048]byte) (int, netip.AddrPort, bool) {
	return 0, netip.AddrPort{}, false
}
