package pcap

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReader: capture files are untrusted input; the reader must bound its
// allocations and never panic.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WritePacket(time.Unix(1, 0), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		records, err := r.ReadAll()
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize and re-parse to the same count.
		var out bytes.Buffer
		w, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range records {
			if err := w.WritePacket(rec.Time, rec.Data); err != nil {
				t.Fatalf("accepted record rejected on write: %v", err)
			}
		}
		r2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		back, err := r2.ReadAll()
		if err != nil || len(back) != len(records) {
			t.Fatalf("round trip: %d vs %d (%v)", len(back), len(records), err)
		}
	})
}
