package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"

	"veridp/internal/controller"
	"veridp/internal/dataplane"
	"veridp/internal/header"
	"veridp/internal/packet"
	"veridp/internal/topo"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		packet.BuildData(header.Header{SrcIP: 1, DstIP: 2, Proto: 6, DstPort: 80}, 64, []byte("a")),
		packet.BuildData(header.Header{SrcIP: 3, DstIP: 4, Proto: 17, DstPort: 53}, 32, nil),
	}
	t0 := time.Unix(1_700_000_000, 123_000)
	for i, fr := range frames {
		if err := w.WritePacket(t0.Add(time.Duration(i)*time.Second), fr); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet {
		t.Fatalf("link type %d", r.LinkType)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("records %d", len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("frame %d corrupted", i)
		}
		if rec.Time.Unix() != t0.Add(time.Duration(i)*time.Second).Unix() {
			t.Fatalf("timestamp %d wrong: %v", i, rec.Time)
		}
		// Every captured frame stays parseable.
		if _, err := packet.Parse(rec.Data); err != nil {
			t.Fatalf("frame %d unparseable: %v", i, err)
		}
	}
}

func TestWriterRejectsBadPackets(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WritePacket(time.Now(), nil); err == nil {
		t.Fatal("empty packet accepted")
	}
	if err := w.WritePacket(time.Now(), make([]byte, maxSnapLen+1)); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("zero magic accepted")
	}
	// Valid header, corrupt record length.
	var buf bytes.Buffer
	NewWriter(&buf)
	buf.Write(bytes.Repeat([]byte{0xff}, 16))
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatal("implausible record accepted")
	}
}

// TestFabricCapture drives traffic through a fabric with the capture tap
// and checks the pcap contains the entry frame and the tagged delivery.
func TestFabricCapture(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Linear(2, 1)
	f := dataplane.NewFabric(n, dataplane.WithCapture(func(ts time.Time, frame []byte) {
		if err := w.WritePacket(ts, frame); err != nil {
			t.Fatal(err)
		}
	}))
	c := controller.New(n, &dataplane.FabricInstaller{Fabric: f})
	if err := c.RouteAllHosts(); err != nil {
		t.Fatal(err)
	}
	h := header.Header{SrcIP: n.Host("h1-0").IP, DstIP: n.Host("h2-0").IP, Proto: 6, SrcPort: 999, DstPort: 80}
	if _, err := f.InjectFromHost("h1-0", h); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("captured %d frames, want entry + delivery", len(recs))
	}
	entry, err := packet.Parse(recs[0].Data)
	if err != nil || entry.HasVeriDP {
		t.Fatalf("entry frame: %+v err %v", entry, err)
	}
	deliv, err := packet.Parse(recs[1].Data)
	if err != nil {
		t.Fatal(err)
	}
	if !deliv.HasVeriDP {
		t.Fatal("delivered frame lost its VeriDP encapsulation")
	}
	if deliv.Header != h {
		t.Fatalf("delivered 5-tuple %v, want %v", deliv.Header, h)
	}
	if deliv.Ingress != n.Host("h1-0").Attach {
		t.Fatalf("ingress %v", deliv.Ingress)
	}
}
