// Package pcap reads and writes classic libpcap capture files (the
// pre-pcapng format every packet tool understands), so emulated traffic —
// including VeriDP's double-VLAN-tagged sampled packets — can be captured
// and inspected with standard tooling. Implemented from the format
// specification over the standard library.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

const (
	magicMicros = 0xa1b2c3d4
	versionMaj  = 2
	versionMin  = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
	// maxSnapLen bounds packet records when reading untrusted files.
	maxSnapLen = 1 << 18
)

// Writer emits a pcap stream. Not safe for concurrent use.
type Writer struct {
	w       io.Writer
	snapLen uint32
}

// NewWriter writes the global header for an Ethernet capture.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMin)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return &Writer{w: w, snapLen: maxSnapLen}, nil
}

// WritePacket records one frame with the given timestamp.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("pcap: empty packet")
	}
	if uint32(len(data)) > w.snapLen {
		return fmt.Errorf("pcap: packet %d bytes exceeds snaplen %d", len(data), w.snapLen)
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Record is one captured frame.
type Record struct {
	Time time.Time
	Data []byte
}

// Reader iterates a pcap stream.
type Reader struct {
	r        io.Reader
	snapLen  uint32
	LinkType uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x (only little-endian microsecond captures supported)",
			binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if maj := binary.LittleEndian.Uint16(hdr[4:6]); maj != versionMaj {
		return nil, fmt.Errorf("pcap: unsupported version %d", maj)
	}
	snap := binary.LittleEndian.Uint32(hdr[16:20])
	if snap == 0 || snap > maxSnapLen {
		snap = maxSnapLen
	}
	return &Reader{
		r:        r,
		snapLen:  snap,
		LinkType: binary.LittleEndian.Uint32(hdr[20:24]),
	}, nil
}

// Next returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Record, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: truncated record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	if capLen == 0 || capLen > r.snapLen {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: truncated packet: %w", err)
	}
	return Record{
		Time: time.Unix(int64(sec), int64(usec)*1000),
		Data: data,
	}, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
