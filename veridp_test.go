package veridp

import (
	"testing"

	"veridp/internal/dataplane"
	"veridp/internal/flowtable"
	"veridp/internal/openflow"
)

// newFlowAdd wraps a rule in the southbound FlowMod envelope.
func newFlowAdd(sw SwitchID, id uint64, r *flowtable.Rule) *openflow.FlowMod {
	return &openflow.FlowMod{Command: openflow.FlowAdd, Switch: sw, RuleID: id, Rule: *r}
}

// buildFigure5 wires the running example through the public API only.
func buildFigure5(t *testing.T) (*Emulation, map[string]uint64) {
	t.Helper()
	net := Figure5()
	em := NewEmulation(net, DefaultTagParams)
	s1 := net.SwitchByName("S1").ID
	s2 := net.SwitchByName("S2").ID
	s3 := net.SwitchByName("S3").ID
	ids := map[string]uint64{}
	add := func(name string, sw SwitchID, r Rule) {
		id, err := em.Controller.InstallRule(sw, r)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	add("h1", s1, Rule{Priority: 30, Match: Match{DstPrefix: Prefix{IP: MustParseIP("10.0.1.1"), Len: 32}}, Action: ActOutput, OutPort: 1})
	add("h2", s1, Rule{Priority: 30, Match: Match{DstPrefix: Prefix{IP: MustParseIP("10.0.1.2"), Len: 32}}, Action: ActOutput, OutPort: 2})
	add("ssh", s1, Rule{Priority: 20, Match: Match{DstPrefix: Prefix{IP: MustParseIP("10.0.2.0"), Len: 24}, HasDst: true, DstPort: 22}, Action: ActOutput, OutPort: 3})
	add("web", s1, Rule{Priority: 10, Match: Match{DstPrefix: Prefix{IP: MustParseIP("10.0.2.0"), Len: 24}}, Action: ActOutput, OutPort: 4})
	add("mb-in", s2, Rule{Priority: 10, Match: Match{InPort: 1}, Action: ActOutput, OutPort: 3})
	add("mb-out", s2, Rule{Priority: 10, Match: Match{InPort: 3}, Action: ActOutput, OutPort: 2})
	add("acl", s3, Rule{Priority: 30, Match: Match{SrcPrefix: Prefix{IP: MustParseIP("10.0.1.2"), Len: 32}}, Action: ActDrop})
	add("h3", s3, Rule{Priority: 20, Match: Match{DstPrefix: Prefix{IP: MustParseIP("10.0.2.0"), Len: 24}}, Action: ActOutput, OutPort: 2})
	add("back", s3, Rule{Priority: 10, Match: Match{DstPrefix: Prefix{IP: MustParseIP("10.0.1.0"), Len: 24}}, Action: ActOutput, OutPort: 3})
	return em, ids
}

func TestMonitorVerifiesHealthyTraffic(t *testing.T) {
	em, _ := buildFigure5(t)
	var violations []Violation
	mon := em.NewMonitor(MonitorConfig{
		OnViolation: func(v Violation) { violations = append(violations, v) },
	})
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}
	verified, violated := mon.Stats()
	if verified != 1 || violated != 0 {
		t.Fatalf("stats %d/%d, want 1/0 (violations: %v)", verified, violated, violations)
	}
}

func TestMonitorFlagsAndLocalizesFault(t *testing.T) {
	em, ids := buildFigure5(t)
	var got []Violation
	mon := em.NewMonitor(MonitorConfig{
		OnViolation: func(v Violation) { got = append(got, v) },
	})
	// Data-plane-only fault: the SSH redirect misforwards.
	s1 := em.Net.SwitchByName("S1").ID
	err := em.Fabric.Switch(s1).Config.Table.Modify(ids["ssh"], func(r *Rule) { r.OutPort = 4 })
	if err != nil {
		t.Fatal(err)
	}
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("violations %d, want 1", len(got))
	}
	v := got[0]
	if !v.Localized || v.FaultySwitch != s1 {
		t.Fatalf("localization: %+v", v)
	}
	if v.Reason == "" || len(v.Candidates) == 0 {
		t.Fatalf("violation missing detail: %+v", v)
	}
	if _, violated := mon.Stats(); violated != 1 {
		t.Fatal("stats not updated")
	}
}

func TestMonitorVerifyWithoutCallbacks(t *testing.T) {
	em, _ := buildFigure5(t)
	mon := em.NewMonitor(MonitorConfig{})
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 80}
	res, err := em.Fabric.InjectFromHost("H1", h)
	if err != nil {
		t.Fatal(err)
	}
	ok, reason := mon.Verify(res.Reports[0])
	if !ok {
		t.Fatalf("healthy report failed: %s", reason)
	}
}

func TestMonitorPathTableStats(t *testing.T) {
	em, _ := buildFigure5(t)
	mon := em.NewMonitor(MonitorConfig{})
	st := mon.PathTable().Stats()
	if st.Pairs == 0 || st.Paths == 0 || st.AvgPathLength <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMonitorRepairRestoresConsistency(t *testing.T) {
	em, ids := buildFigure5(t)
	var lastViolation *Violation
	mon := em.NewMonitor(MonitorConfig{
		OnViolation: func(v Violation) { lastViolation = &v },
	})
	s1 := em.Net.SwitchByName("S1").ID
	if err := em.Fabric.Switch(s1).Config.Table.Modify(ids["ssh"], func(r *Rule) { r.OutPort = 4 }); err != nil {
		t.Fatal(err)
	}
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}
	if lastViolation == nil {
		t.Fatal("no violation observed")
	}
	blamed, err := mon.Repair(lastViolation.Report, &dataplane.FabricInstaller{Fabric: em.Fabric})
	if err != nil {
		t.Fatal(err)
	}
	if blamed != s1 {
		t.Fatalf("repaired switch %d, want %d", blamed, s1)
	}
	// The flow verifies again.
	before, violatedBefore := mon.Stats()
	if _, err := em.Fabric.InjectFromHost("H1", h); err != nil {
		t.Fatal(err)
	}
	after, violatedAfter := mon.Stats()
	if after != before+1 || violatedAfter != violatedBefore {
		t.Fatalf("post-repair stats: verified %d→%d violated %d→%d", before, after, violatedBefore, violatedAfter)
	}
}

func TestPolicySuiteThroughFacade(t *testing.T) {
	net := Linear(3, 1)
	em := NewEmulation(net, DefaultTagParams)
	suite := PolicySuite{
		Reachability{SrcHost: "h1-0", DstHost: "h3-0"},
		Isolation{
			SrcPrefix: Prefix{IP: net.Host("h2-0").IP, Len: 32},
			DstPrefix: Prefix{IP: net.Host("h3-0").IP, Len: 32},
		},
	}
	if err := suite.Compile(em.Controller); err != nil {
		t.Fatal(err)
	}
	mon := em.NewMonitor(MonitorConfig{})
	if errs := suite.Check(mon.PathTable()); len(errs) != 0 {
		t.Fatalf("static check: %v", errs)
	}
	// The isolation holds operationally and verifies.
	h := Header{SrcIP: net.Host("h2-0").IP, DstIP: net.Host("h3-0").IP, Proto: 6}
	res, err := em.Fabric.InjectFromHost("h2-0", h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit.Port != DropPort {
		t.Fatalf("isolation not enforced: %v", res.Exit)
	}
	if _, violated := mon.Stats(); violated != 0 {
		t.Fatal("intended drop flagged as a violation")
	}
}

func TestProxyHooksRebuildOnFlowMod(t *testing.T) {
	em, _ := buildFigure5(t)
	mon := em.NewMonitor(MonitorConfig{})

	// Clone the logical configs the hooks mutate (stand-in for the server
	// process's own copy).
	logical := em.Controller.Logical()
	hooks := mon.ProxyHooks(logical)

	// A new rule arrives through the proxy: S3 starts dropping SSH.
	s3 := em.Net.SwitchByName("S3").ID
	fm := &flowtable.Rule{
		Priority: 40,
		Match:    Match{HasDst: true, DstPort: 22},
		Action:   ActDrop,
	}
	hooks.OnFlowMod(s3, newFlowAdd(s3, 999, fm))

	// The table now expects SSH to drop at S3 — a delivered SSH packet
	// must fail verification. (The data plane never got the rule: this is
	// the inconsistency.)
	h := Header{SrcIP: MustParseIP("10.0.1.1"), DstIP: MustParseIP("10.0.2.1"), Proto: 6, DstPort: 22}
	res, err := em.Fabric.InjectFromHost("H1", h)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := mon.Verify(res.Reports[0])
	if ok {
		t.Fatal("path table did not track the FlowMod through the proxy hooks")
	}
}
