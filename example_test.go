package veridp_test

import (
	"fmt"

	"veridp"
)

// Example shows the core loop on the paper's Figure 5 network: install a
// policy, monitor traffic, corrupt one physical rule behind the
// controller's back, and watch the monitor flag and localize it.
func Example() {
	net := veridp.Figure5()
	em := veridp.NewEmulation(net, veridp.DefaultTagParams)

	s1 := net.SwitchByName("S1").ID
	s3 := net.SwitchByName("S3").ID
	subnet := veridp.Prefix{IP: veridp.MustParseIP("10.0.2.0"), Len: 24}
	sshRule, _ := em.Controller.InstallRule(s1, veridp.Rule{
		Priority: 20,
		Match:    veridp.Match{DstPrefix: subnet, HasDst: true, DstPort: 22},
		Action:   veridp.ActOutput, OutPort: 3, // via the middlebox
	})
	em.Controller.InstallRule(s1, veridp.Rule{
		Priority: 10, Match: veridp.Match{DstPrefix: subnet},
		Action: veridp.ActOutput, OutPort: 4, // direct
	})
	em.Controller.InstallRule(s3, veridp.Rule{
		Priority: 10, Match: veridp.Match{DstPrefix: subnet},
		Action: veridp.ActOutput, OutPort: 2,
	})
	mbSwitch := net.SwitchByName("S2").ID
	em.Controller.InstallRule(mbSwitch, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 1}, Action: veridp.ActOutput, OutPort: 3})
	em.Controller.InstallRule(mbSwitch, veridp.Rule{Priority: 10, Match: veridp.Match{InPort: 3}, Action: veridp.ActOutput, OutPort: 2})

	mon := em.NewMonitor(veridp.MonitorConfig{
		OnViolation: func(v veridp.Violation) {
			fmt.Printf("violation: %s, faulty switch %s\n", v.Reason, net.Switch(v.FaultySwitch).Name)
		},
	})

	ssh := veridp.Header{
		SrcIP: veridp.MustParseIP("10.0.1.1"), DstIP: veridp.MustParseIP("10.0.2.1"),
		Proto: 6, DstPort: 22,
	}
	em.Fabric.InjectFromHost("H1", ssh) // healthy: verifies silently

	// A switch bug rewires the redirect; the controller never hears of it.
	em.Fabric.Switch(s1).Config.Table.Modify(sshRule, func(r *veridp.Rule) { r.OutPort = 4 })
	em.Fabric.InjectFromHost("H1", ssh)

	verified, violated := mon.Stats()
	fmt.Printf("verified=%d violated=%d\n", verified, violated)
	// Output:
	// violation: tag-mismatch, faulty switch S1
	// verified=1 violated=1
}
